//! A fluent builder for assembling experiments.
//!
//! [`Experiment`] wraps the manual `ClusterConfig` → `Cluster::new` →
//! `create_file` → `add_program` sequence in a declarative chain with
//! up-front validation:
//!
//! ```no_run
//! use dualpar_cluster::prelude::*;
//! # fn script(_: &[dualpar_pfs::FileId]) -> dualpar_mpiio::ProgramScript { unimplemented!() }
//!
//! let report = Experiment::darwin()
//!     .servers(9)
//!     .seed(7)
//!     .telemetry(TelemetryLevel::Counters)
//!     .file("dataset.bin", 256 << 20)
//!     .program(IoStrategy::DualPar, |files| script(files))
//!     .run()
//!     .expect("valid experiment");
//! ```
//!
//! Program scripts are built by closures receiving the created [`FileId`]s
//! (in `file()` call order), so workload generators stay decoupled from the
//! cluster crate. `build()` returns the assembled [`Cluster`] for callers
//! that need mid-run access (disk traces, telemetry export); `run()` is the
//! one-shot convenience. The underlying `ClusterConfig`/`ProgramSpec` types
//! remain public — the builder is sugar, not a new abstraction layer.

use crate::config::{ClusterConfig, CtxMode, IoStrategy, ProgramSpec, ServerWriteMode};
use crate::engine::Cluster;
use crate::metrics::RunReport;
use dualpar_disk::SchedulerKind;
use dualpar_mpiio::{Op, ProgramScript};
use dualpar_pfs::FileId;
use dualpar_sim::SimTime;
use dualpar_telemetry::{TelemetryConfig, TelemetryLevel};
use dualpar_sim::FxHashSet;

/// Why an [`Experiment`] could not be assembled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExperimentError {
    /// No `program(...)` call was made.
    NoPrograms,
    /// `servers(0)` — the file system needs at least one data server.
    NoServers,
    /// `compute_nodes(0)` — processes need somewhere to run.
    NoComputeNodes,
    /// The stripe unit was set to zero.
    ZeroStripe,
    /// Two `file(...)` calls used the same name.
    DuplicateFile(String),
    /// A file was declared with size zero.
    ZeroFileSize(String),
    /// A program's script has no ranks.
    NoRanks {
        /// The program's label.
        program: String,
    },
    /// A program's ranks disagree on their barrier sequence.
    InconsistentBarriers {
        /// The program's label.
        program: String,
    },
    /// A program references a file that no `file(...)` call created.
    UnknownFile {
        /// The program's label.
        program: String,
        /// The raw file id the script referenced.
        file: u32,
    },
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::NoPrograms => write!(f, "experiment has no programs"),
            ExperimentError::NoServers => write!(f, "experiment has zero data servers"),
            ExperimentError::NoComputeNodes => write!(f, "experiment has zero compute nodes"),
            ExperimentError::ZeroStripe => write!(f, "stripe size must be non-zero"),
            ExperimentError::DuplicateFile(name) => {
                write!(f, "file {name:?} declared more than once")
            }
            ExperimentError::ZeroFileSize(name) => {
                write!(f, "file {name:?} declared with size zero")
            }
            ExperimentError::NoRanks { program } => {
                write!(f, "program {program:?} has no ranks")
            }
            ExperimentError::InconsistentBarriers { program } => {
                write!(f, "program {program:?} has inconsistent barrier sequences")
            }
            ExperimentError::UnknownFile { program, file } => {
                write!(
                    f,
                    "program {program:?} references file id {file} that was never declared"
                )
            }
        }
    }
}

impl std::error::Error for ExperimentError {}

type ScriptFn = Box<dyn FnOnce(&[FileId]) -> ProgramScript>;

struct ProgramDef {
    strategy: IoStrategy,
    start_at: SimTime,
    script: ScriptFn,
}

/// Fluent experiment assembly — see the [module docs](self).
pub struct Experiment {
    cfg: ClusterConfig,
    files: Vec<(String, u64)>,
    programs: Vec<ProgramDef>,
}

impl Experiment {
    /// Start from the paper's Darwin platform (nine PVFS2 data servers,
    /// 7200-RPM disks behind CFQ, 64 KB striping, GigE) — i.e.
    /// `ClusterConfig::default()`.
    pub fn darwin() -> Self {
        Experiment::with_config(ClusterConfig::default())
    }

    /// Start from an explicit configuration.
    pub fn with_config(cfg: ClusterConfig) -> Self {
        Experiment {
            cfg,
            files: Vec::new(),
            programs: Vec::new(),
        }
    }

    // ----- platform knobs ------------------------------------------------

    /// Number of data servers (each with one disk).
    pub fn servers(mut self, n: u32) -> Self {
        self.cfg.num_data_servers = n;
        self
    }

    /// Number of compute nodes.
    pub fn compute_nodes(mut self, n: u32) -> Self {
        self.cfg.num_compute_nodes = n;
        self
    }

    /// PVFS2 stripe unit (also the cache chunk size), in bytes.
    pub fn stripe(mut self, bytes: u64) -> Self {
        self.cfg.stripe_size = bytes;
        self
    }

    /// Disk scheduler at every server.
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.cfg.scheduler = kind;
        self
    }

    /// Disk-scheduler context granularity.
    pub fn ctx_mode(mut self, mode: CtxMode) -> Self {
        self.cfg.ctx_mode = mode;
        self
    }

    /// Server write handling (write-through vs. periodic write-back).
    pub fn server_write_mode(mut self, mode: ServerWriteMode) -> Self {
        self.cfg.server_write_mode = mode;
        self
    }

    /// Master seed for every deterministic random stream.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Record full per-request disk traces (needed for LBN figures).
    pub fn trace_disks(mut self, on: bool) -> Self {
        self.cfg.trace_disks = on;
        self
    }

    /// Set the telemetry level (default capacity).
    pub fn telemetry(mut self, level: TelemetryLevel) -> Self {
        self.cfg.telemetry = TelemetryConfig::at(level);
        self
    }

    /// Set the full telemetry configuration (level and trace capacity).
    pub fn telemetry_config(mut self, cfg: TelemetryConfig) -> Self {
        self.cfg.telemetry = cfg;
        self
    }

    /// Record request-lifecycle and process-state spans, enabling the
    /// time-attribution profile (`RunReport::span_profile`). Orthogonal to
    /// the telemetry level; see `docs/PROFILING.md` for the span catalogue.
    pub fn profile_spans(mut self) -> Self {
        self.cfg.telemetry.spans = true;
        self
    }

    /// Escape hatch: tweak any remaining `ClusterConfig` field in place.
    pub fn tune(mut self, f: impl FnOnce(&mut ClusterConfig)) -> Self {
        f(&mut self.cfg);
        self
    }

    // ----- contents ------------------------------------------------------

    /// Declare a file to create in the parallel file system. Files are
    /// created in declaration order; program closures receive their ids in
    /// the same order.
    pub fn file(mut self, name: impl Into<String>, size: u64) -> Self {
        self.files.push((name.into(), size));
        self
    }

    /// Number of files declared so far. Extension layers that pair each
    /// program instance with a freshly declared file use this to compute the
    /// index the instance's [`FileId`] will occupy in the slice passed to
    /// program closures.
    pub fn files_declared(&self) -> usize {
        self.files.len()
    }

    /// Add a program starting at time zero. The closure receives the ids of
    /// every declared file (in `file()` order) and returns the program's
    /// script.
    pub fn program(
        self,
        strategy: IoStrategy,
        script: impl FnOnce(&[FileId]) -> ProgramScript + 'static,
    ) -> Self {
        self.program_at(strategy, SimTime::ZERO, script)
    }

    /// Add a program submitted at `start_at`.
    pub fn program_at(
        mut self,
        strategy: IoStrategy,
        start_at: SimTime,
        script: impl FnOnce(&[FileId]) -> ProgramScript + 'static,
    ) -> Self {
        self.programs.push(ProgramDef {
            strategy,
            start_at,
            script: Box::new(script),
        });
        self
    }

    /// Open-loop admission: add one program per entry of `starts`, all
    /// built by a shared factory. Instance `i` is submitted at `starts[i]`;
    /// the factory receives the instance index plus the full declared-file
    /// slice, so each instance can build a distinct (e.g. reseeded) script
    /// against its own file. This is the builder-level hook for arrival
    /// processes: callers expand an arrival process into concrete start
    /// times up front, keeping the assembled cluster a pure function of
    /// those times.
    pub fn program_instances(
        mut self,
        strategy: IoStrategy,
        starts: &[SimTime],
        factory: impl Fn(usize, &[FileId]) -> ProgramScript + 'static,
    ) -> Self {
        let factory = std::rc::Rc::new(factory);
        for (i, &start_at) in starts.iter().enumerate() {
            let f = std::rc::Rc::clone(&factory);
            self.programs.push(ProgramDef {
                strategy,
                start_at,
                script: Box::new(move |files| f(i, files)),
            });
        }
        self
    }

    // ----- assembly ------------------------------------------------------

    /// Validate and assemble the cluster: create every declared file, build
    /// each program's script, and register the programs. The returned
    /// [`Cluster`] is ready to [`Cluster::run`]; use it directly when you
    /// need post-run access to disks or telemetry.
    pub fn build(self) -> Result<Cluster, ExperimentError> {
        if self.programs.is_empty() {
            return Err(ExperimentError::NoPrograms);
        }
        if self.cfg.num_data_servers == 0 {
            return Err(ExperimentError::NoServers);
        }
        if self.cfg.num_compute_nodes == 0 {
            return Err(ExperimentError::NoComputeNodes);
        }
        if self.cfg.stripe_size == 0 {
            return Err(ExperimentError::ZeroStripe);
        }
        let mut names = FxHashSet::default();
        for (name, size) in &self.files {
            if !names.insert(name.clone()) {
                return Err(ExperimentError::DuplicateFile(name.clone()));
            }
            if *size == 0 {
                return Err(ExperimentError::ZeroFileSize(name.clone()));
            }
        }
        let mut cluster = Cluster::new(self.cfg);
        let mut ids = Vec::with_capacity(self.files.len());
        for (name, size) in &self.files {
            ids.push(cluster.create_file(name, *size));
        }
        let known: FxHashSet<FileId> = ids.iter().copied().collect();
        for def in self.programs {
            let script = (def.script)(&ids);
            if script.ranks.is_empty() {
                return Err(ExperimentError::NoRanks {
                    program: script.name,
                });
            }
            if !script.barriers_consistent() {
                return Err(ExperimentError::InconsistentBarriers {
                    program: script.name,
                });
            }
            for rank in &script.ranks {
                for op in &rank.ops {
                    if let Op::Io(call) = op {
                        if !known.contains(&call.file) {
                            return Err(ExperimentError::UnknownFile {
                                program: script.name.clone(),
                                file: call.file.0,
                            });
                        }
                    }
                }
            }
            cluster.add_program(ProgramSpec::new(script, def.strategy).starting_at(def.start_at));
        }
        Ok(cluster)
    }

    /// Build and run to completion, returning the report.
    pub fn run(self) -> Result<RunReport, ExperimentError> {
        Ok(self.build()?.run())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dualpar_disk::IoKind;
    use dualpar_mpiio::{IoCall, ProcessScript};
    use dualpar_pfs::FileRegion;
    use dualpar_sim::SimDuration;

    /// One rank reading `len` bytes of the first file in two calls.
    fn reader(files: &[FileId]) -> ProgramScript {
        let f = files[0];
        let call = |off| {
            Op::Io(IoCall {
                kind: IoKind::Read,
                file: f,
                regions: vec![FileRegion::new(off, 64 * 1024)],
                collective: false,
                predicted: None,
            })
        };
        ProgramScript {
            name: "reader".into(),
            ranks: vec![ProcessScript::new(vec![
                Op::Compute(SimDuration::from_millis(1)),
                call(0),
                call(64 * 1024),
            ])],
        }
    }

    #[test]
    fn builder_runs_a_minimal_experiment() {
        let report = Experiment::darwin()
            .servers(3)
            .compute_nodes(2)
            .seed(7)
            .file("data", 1 << 20)
            .program(IoStrategy::Vanilla, reader)
            .run()
            .expect("valid experiment");
        assert_eq!(report.programs.len(), 1);
        assert_eq!(report.programs[0].bytes_read, 128 * 1024);
        assert!(report.telemetry.is_none(), "telemetry defaults to off");
    }

    #[test]
    fn builder_matches_manual_assembly_exactly() {
        let manual = {
            let cfg = ClusterConfig {
                num_data_servers: 3,
                seed: 9,
                ..ClusterConfig::default()
            };
            let mut cluster = Cluster::new(cfg);
            let f = cluster.create_file("data", 1 << 20);
            cluster.add_program(ProgramSpec::new(reader(&[f]), IoStrategy::Vanilla));
            cluster.run()
        };
        let built = Experiment::darwin()
            .servers(3)
            .seed(9)
            .file("data", 1 << 20)
            .program(IoStrategy::Vanilla, reader)
            .run()
            .unwrap();
        assert_eq!(built.sim_end, manual.sim_end);
        assert_eq!(built.events_processed, manual.events_processed);
        assert_eq!(built.programs[0].bytes_read, manual.programs[0].bytes_read);
    }

    #[test]
    fn telemetry_level_flows_into_the_report() {
        let report = Experiment::darwin()
            .servers(3)
            .telemetry(TelemetryLevel::Counters)
            .file("data", 1 << 20)
            .program(IoStrategy::Vanilla, reader)
            .run()
            .unwrap();
        let snap = report.telemetry.expect("counters enabled");
        assert_eq!(
            snap.counters.get("io.bytes_read").copied(),
            Some(128 * 1024),
            "telemetry byte counter must reconcile with the program report"
        );
    }

    #[test]
    fn program_instances_admits_one_program_per_start() {
        let starts = [
            SimTime::ZERO,
            SimTime::from_secs(1),
            SimTime::from_secs(2),
        ];
        let report = Experiment::darwin()
            .servers(3)
            .file("a", 1 << 20)
            .file("b", 1 << 20)
            .file("c", 1 << 20)
            .program_instances(IoStrategy::Vanilla, &starts, |i, files| {
                let mut s = reader(&[files[i]]);
                s.name = format!("inst-{i}");
                s
            })
            .run()
            .expect("valid experiment");
        assert_eq!(report.programs.len(), 3);
        for (i, p) in report.programs.iter().enumerate() {
            assert_eq!(p.name, format!("inst-{i}"));
            assert!(p.start >= starts[i], "instance {i} started before its arrival");
        }
    }

    #[test]
    fn validation_rejects_bad_experiments() {
        assert_eq!(
            Experiment::darwin().build().err(),
            Some(ExperimentError::NoPrograms)
        );
        assert_eq!(
            Experiment::darwin()
                .servers(0)
                .file("data", 1 << 20)
                .program(IoStrategy::Vanilla, reader)
                .build()
                .err(),
            Some(ExperimentError::NoServers)
        );
        assert_eq!(
            Experiment::darwin()
                .file("data", 1 << 20)
                .file("data", 2 << 20)
                .program(IoStrategy::Vanilla, reader)
                .build()
                .err(),
            Some(ExperimentError::DuplicateFile("data".into()))
        );
        assert_eq!(
            Experiment::darwin()
                .file("data", 0)
                .program(IoStrategy::Vanilla, reader)
                .build()
                .err(),
            Some(ExperimentError::ZeroFileSize("data".into()))
        );
    }

    #[test]
    fn validation_rejects_bad_scripts() {
        let empty = Experiment::darwin()
            .file("data", 1 << 20)
            .program(IoStrategy::Vanilla, |_| ProgramScript {
                name: "empty".into(),
                ranks: vec![],
            })
            .build();
        assert_eq!(
            empty.err(),
            Some(ExperimentError::NoRanks {
                program: "empty".into()
            })
        );
        let unknown = Experiment::darwin()
            .file("data", 1 << 20)
            .program(IoStrategy::Vanilla, |_| {
                reader(&[FileId(999)]) // not a declared file
            })
            .build();
        assert_eq!(
            unknown.err(),
            Some(ExperimentError::UnknownFile {
                program: "reader".into(),
                file: 999
            })
        );
        let skewed = Experiment::darwin()
            .file("data", 1 << 20)
            .program(IoStrategy::Vanilla, |_| ProgramScript {
                name: "skewed".into(),
                ranks: vec![
                    ProcessScript::new(vec![Op::Barrier(1)]),
                    ProcessScript::new(vec![Op::Barrier(2)]),
                ],
            })
            .build();
        assert_eq!(
            skewed.err(),
            Some(ExperimentError::InconsistentBarriers {
                program: "skewed".into()
            })
        );
    }
}
