//! Run-level metric collection and the final report.

use dualpar_core::ExecMode;
use dualpar_sim::{SimDuration, SimTime, TimeSeries};
use dualpar_telemetry::{SpanProfile, TelemetrySnapshot};
use serde::Serialize;

/// Outcome of one program.
#[derive(Debug, Clone, Serialize)]
pub struct ProgramReport {
    /// Program label.
    pub name: String,
    /// Ranks it ran with.
    pub nprocs: usize,
    /// Strategy label.
    pub strategy: &'static str,
    /// Submission time.
    pub start: SimTime,
    /// Completion time (includes the final flush).
    pub finish: SimTime,
    /// Application-level bytes read (useful bytes).
    pub bytes_read: u64,
    /// Application-level bytes written (useful bytes).
    pub bytes_written: u64,
    /// Sum over processes of time spent blocked on I/O.
    pub io_time: SimDuration,
    /// Data-driven phases executed.
    pub phases: u64,
    /// Average mis-prefetch ratio observed across phases (0 when none).
    pub avg_misprefetch: f64,
}

impl ProgramReport {
    /// Wall time from start to finish.
    pub fn elapsed(&self) -> SimDuration {
        self.finish.since(self.start)
    }

    /// Program I/O throughput in MB/s (useful bytes over wall time), the
    /// paper's headline metric.
    pub fn throughput_mbps(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        (self.bytes_read + self.bytes_written) as f64 / 1e6 / secs
    }

    /// Mean per-process I/O time in seconds (Fig. 5's metric).
    pub fn mean_io_time_secs(&self) -> f64 {
        if self.nprocs == 0 {
            return 0.0;
        }
        self.io_time.as_secs_f64() / self.nprocs as f64
    }
}

/// A recorded execution-mode change (Fig. 7's switching behaviour).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ModeEvent {
    /// When EMC applied the change.
    pub at: SimTime,
    /// Index of the program (order of `add_program` calls).
    pub program_index: usize,
    /// The new mode.
    pub mode: ExecMode,
}

/// The full run report.
#[derive(Debug, Clone, Serialize)]
pub struct RunReport {
    /// One report per program, in submission order.
    pub programs: Vec<ProgramReport>,
    /// Simulated time when the last event fired.
    pub sim_end: SimTime,
    /// Useful application bytes completed per one-second bin (Fig. 7a).
    pub throughput_timeline: TimeSeries,
    /// Execution-mode switches EMC applied, in time order.
    pub mode_events: Vec<ModeEvent>,
    /// EMC's measured `aveSeekDist / aveReqDist` improvement estimate per
    /// sampling slot `(seconds, ratio)` — the signal behind Fig. 7's
    /// switching decisions.
    pub emc_improvement: Vec<(f64, f64)>,
    /// Total bytes moved by all disks (includes holes/sieving overhead).
    pub disk_bytes: u64,
    /// Events the simulator processed.
    pub events_processed: u64,
    /// Metric snapshot when telemetry was enabled for the run; `None`
    /// otherwise. The raw JSONL event trace is exported separately (see
    /// `Cluster::export_trace`).
    pub telemetry: Option<TelemetrySnapshot>,
    /// Time-attribution summary (per-process time-in-state, stage latency
    /// quantiles, critical path) when span recording was enabled; `None`
    /// otherwise. See `docs/PROFILING.md`.
    pub span_profile: Option<SpanProfile>,
}

impl RunReport {
    /// Aggregate system throughput: total useful bytes over the makespan.
    pub fn aggregate_throughput_mbps(&self) -> f64 {
        let bytes: u64 = self
            .programs
            .iter()
            .map(|p| p.bytes_read + p.bytes_written)
            .sum();
        let start = self
            .programs
            .iter()
            .map(|p| p.start)
            .min()
            .unwrap_or(SimTime::ZERO);
        let finish = self
            .programs
            .iter()
            .map(|p| p.finish)
            .max()
            .unwrap_or(SimTime::ZERO);
        let secs = finish.since(start).as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            bytes as f64 / 1e6 / secs
        }
    }

    /// Find a program's report by name.
    pub fn program(&self, name: &str) -> Option<&ProgramReport> {
        self.programs.iter().find(|p| p.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(bytes: u64, secs: u64) -> ProgramReport {
        ProgramReport {
            name: "p".into(),
            nprocs: 4,
            strategy: "vanilla",
            start: SimTime::ZERO,
            finish: SimTime::from_secs(secs),
            bytes_read: bytes,
            bytes_written: 0,
            io_time: SimDuration::from_secs(2),
            phases: 0,
            avg_misprefetch: 0.0,
        }
    }

    #[test]
    fn throughput_is_bytes_over_elapsed() {
        let p = report(200_000_000, 10);
        assert!((p.throughput_mbps() - 20.0).abs() < 1e-9);
        assert!((p.mean_io_time_secs() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn aggregate_uses_makespan() {
        let mut a = report(100_000_000, 10);
        let b = report(100_000_000, 20);
        a.start = SimTime::from_secs(5);
        let r = RunReport {
            programs: vec![a, b],
            sim_end: SimTime::from_secs(20),
            throughput_timeline: TimeSeries::new(SimDuration::from_secs(1)),
            mode_events: vec![],
            emc_improvement: vec![],
            disk_bytes: 0,
            events_processed: 0,
            telemetry: None,
            span_profile: None,
        };
        // makespan = 0..20 s, 200 MB total.
        assert!((r.aggregate_throughput_mbps() - 10.0).abs() < 1e-9);
    }
}
