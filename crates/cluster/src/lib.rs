//! # dualpar-cluster
//!
//! The full-system binding: a deterministic event-driven simulation of the
//! paper's platform — compute nodes running MPI process scripts, PVFS2-like
//! data servers with mechanical disks behind CFQ, a GigE-class network, the
//! global cache, and the DualPar policy modules — executing programs under
//! any of the five I/O strategies (vanilla, collective, prefetch-overlap,
//! forced data-driven, adaptive DualPar).

mod datadriven;
mod engine;
mod exec;

pub mod config;
pub mod metrics;

pub use config::{ClusterConfig, CtxMode, IoStrategy, ProgramSpec, ServerWriteMode};
pub use engine::Cluster;
pub use metrics::{ModeEvent, ProgramReport, RunReport};
