//! # dualpar-cluster
//!
//! The full-system binding: a deterministic event-driven simulation of the
//! paper's platform — compute nodes running MPI process scripts, PVFS2-like
//! data servers with mechanical disks behind CFQ, a GigE-class network, the
//! global cache, and the DualPar policy modules — executing programs under
//! any of the five I/O strategies (vanilla, collective, prefetch-overlap,
//! forced data-driven, adaptive DualPar).

mod datadriven;
mod engine;
mod exec;
mod sharded;

pub mod builder;
pub mod config;
pub mod metrics;

pub use builder::{Experiment, ExperimentError};
pub use config::{ClusterConfig, CtxMode, IoStrategy, ProgramSpec, ServerWriteMode};
pub use engine::Cluster;
pub use metrics::{ModeEvent, ProgramReport, RunReport};
pub use dualpar_telemetry::{
    folded, SpanProfile, Telemetry, TelemetryConfig, TelemetryLevel, TelemetrySnapshot,
};

/// One-line import for experiment scripts: `use dualpar_cluster::prelude::*;`.
pub mod prelude {
    pub use crate::builder::{Experiment, ExperimentError};
    pub use crate::config::{ClusterConfig, CtxMode, IoStrategy, ProgramSpec, ServerWriteMode};
    pub use crate::engine::Cluster;
    pub use crate::metrics::{ModeEvent, ProgramReport, RunReport};
    pub use dualpar_disk::{IoKind, SchedulerKind};
    pub use dualpar_mpiio::{IoCall, Op, ProcessScript, ProgramScript};
    pub use dualpar_pfs::{FileId, FileRegion};
    pub use dualpar_sim::{SimDuration, SimTime};
    pub use dualpar_telemetry::{SpanProfile, TelemetryConfig, TelemetryLevel};
}
