//! Script advancement and the vanilla / barrier / collective execution
//! paths, plus completion-group dispatch.

use crate::config::IoStrategy;
use crate::engine::{Cluster, Ev, Group, PState, Purpose};
use dualpar_core::ExecMode;
use dualpar_disk::IoKind;
use dualpar_mpiio::{plan_collective, plan_strided, IoCall, Op};
use dualpar_pfs::{FileId, FileRegion};
use dualpar_sim::{SimDuration, SimTime};

impl Cluster {
    /// Advance a process through its script until it blocks or finishes.
    pub(crate) fn advance(&mut self, now: SimTime, p: usize) {
        // Detach a handle to the (immutable, shared) script so ops can be
        // borrowed out of it while `self` is mutated — the hot loop never
        // deep-clones an op.
        let script = std::sync::Arc::clone(&self.procs[p].script);
        loop {
            let pos = self.procs[p].pos;
            if pos >= script.ops.len() {
                self.proc_done(now, p);
                return;
            }
            match &script.ops[pos] {
                Op::Compute(d) => {
                    self.procs[p].pos += 1;
                    if *d == SimDuration::ZERO {
                        continue;
                    }
                    self.procs[p].state = PState::Computing;
                    self.sync_proc_span(p, now);
                    self.queue.schedule(now.saturating_add(*d), Ev::ProcReady(p));
                    return;
                }
                Op::Barrier(id) => {
                    self.procs[p].pos += 1;
                    if self.barrier_arrive(now, p, *id) {
                        continue; // we released the barrier; keep going
                    }
                    return; // waiting
                }
                Op::Io(call) => {
                    self.begin_io(now, p, call);
                    return;
                }
            }
        }
    }

    fn proc_done(&mut self, now: SimTime, p: usize) {
        if self.procs[p].state == PState::Done {
            return;
        }
        self.procs[p].state = PState::Done;
        self.sync_proc_span(p, now);
        let dur = now.since(self.procs[p].last_io_end);
        self.procs[p].clock.record_other(dur);
        let prog = self.procs[p].prog;
        self.programs[prog].done_procs += 1;
        // A finishing process may be the last active one a pre-execution
        // phase was waiting for.
        self.check_phase_ready(now, prog);
        self.maybe_finish_program(now, prog);
    }

    /// Returns true when this arrival released the barrier.
    fn barrier_arrive(&mut self, now: SimTime, p: usize, id: u64) -> bool {
        let prog = self.procs[p].prog;
        let nprocs = self.programs[prog].nprocs();
        let waiters = self.programs[prog].barrier_waits.entry(id).or_default();
        if waiters.len() + 1 == nprocs {
            let released = self.programs[prog]
                .barrier_waits
                .remove(&id)
                .unwrap_or_default();
            for w in released {
                self.procs[w].state = PState::Computing;
                self.sync_proc_span(w, now);
                self.queue.schedule(now, Ev::ProcReady(w));
            }
            true
        } else {
            waiters.push(p);
            self.procs[p].state = PState::BarrierWait(id);
            self.sync_proc_span(p, now);
            false
        }
    }

    /// Route an I/O call according to the program's strategy and mode.
    fn begin_io(&mut self, now: SimTime, p: usize, call: &IoCall) {
        {
            let proc = &mut self.procs[p];
            let gap = now.since(proc.last_io_end);
            proc.clock.record_other(gap);
            proc.op_start = now;
        }
        let prog = self.procs[p].prog;
        let strategy = self.programs[prog].strategy;
        let mode = self.programs[prog].mode;
        match strategy {
            IoStrategy::Collective if call.collective => self.coll_arrive(now, p, call),
            IoStrategy::DualPar | IoStrategy::DualParForced
                if mode == ExecMode::DataDriven =>
            {
                self.dd_io(now, p, call)
            }
            IoStrategy::PrefetchOverlap if call.kind == IoKind::Read => {
                self.s2_read(now, p, call)
            }
            _ => self.vanilla_io(now, p, call),
        }
    }

    // ----- vanilla ------------------------------------------------------

    /// Issue a call's regions synchronously, one region at a time — the
    /// computation-driven baseline ("a process issues its synchronous read
    /// requests one at a time", §II).
    fn vanilla_io(&mut self, now: SimTime, p: usize, call: &IoCall) {
        let covers: Vec<FileRegion> = if call.kind == IoKind::Read && self.cfg.sieve.enabled {
            plan_strided(call.file, &call.regions, &self.cfg.sieve)
                .into_iter()
                .map(|io| io.cover)
                .collect()
        } else {
            call.regions.clone()
        };
        // Feed the EMC's per-node request-distance tracker with the
        // app-level request stream (computation-driven issuance only).
        let node = self.procs[p].node as usize;
        for r in &call.regions {
            self.req_dist[node].observe(call.file.0, r.offset, r.len);
        }
        self.procs[p].cur_covers = covers;
        self.procs[p].state = PState::VanillaIo {
            op: self.procs[p].pos,
            next_region: 0,
        };
        self.sync_proc_span(p, now);
        self.vanilla_issue_next(now, p);
    }

    pub(crate) fn vanilla_issue_next(&mut self, now: SimTime, p: usize) {
        let (op, next_region) = match self.procs[p].state {
            PState::VanillaIo { op, next_region } => (op, next_region),
            ref other => unreachable!("vanilla_issue_next in state {other:?}"),
        };
        let script = std::sync::Arc::clone(&self.procs[p].script);
        let call = match &script.ops[op] {
            Op::Io(c) => c,
            _ => unreachable!("op index must be an Io op"),
        };
        if next_region >= self.procs[p].cur_covers.len() {
            // Op complete.
            self.complete_io_op(now, p, call);
            return;
        }
        let cover = self.procs[p].cur_covers[next_region];
        self.procs[p].state = PState::VanillaIo {
            op,
            next_region: next_region + 1,
        };
        let node = self.procs[p].node;
        let prog = self.procs[p].prog;
        let ctx = self.effective_ctx(prog, self.procs[p].ctx);
        let group = self.new_group(Purpose::VanillaRegion { proc: p });
        self.issue_covers(now, group, node, ctx, call.kind, &[(call.file, cover)]);
        self.finish_if_empty(now, group);
    }

    /// Account and finish the I/O op a process was blocked on, then keep
    /// advancing its script.
    pub(crate) fn complete_io_op(&mut self, now: SimTime, p: usize, call: &IoCall) {
        let bytes = call.bytes();
        let dur = now.since(self.procs[p].op_start);
        self.procs[p].clock.record_io(dur, bytes);
        self.procs[p].last_io_end = now;
        self.procs[p].pos += 1;
        self.procs[p].cur_covers.clear();
        let prog = self.procs[p].prog;
        let program = &mut self.programs[prog];
        program.io_time = program.io_time.saturating_add(dur);
        match call.kind {
            IoKind::Read => program.bytes_read += bytes,
            IoKind::Write => program.bytes_written += bytes,
        }
        self.tele.count(
            match call.kind {
                IoKind::Read => "io.bytes_read",
                IoKind::Write => "io.bytes_written",
            },
            bytes,
        );
        self.tele.observe("io.op_secs", dur.as_secs_f64());
        self.timeline.record(now, bytes as f64);
        self.advance(now, p);
    }

    // ----- collective ----------------------------------------------------

    fn coll_arrive(&mut self, now: SimTime, p: usize, call: &IoCall) {
        let prog = self.procs[p].prog;
        let rank = self.procs[p].rank;
        {
            let program = &mut self.programs[prog];
            let coll = &mut program.coll;
            if coll.count == 0 {
                coll.kind = Some(call.kind);
                coll.file = Some(call.file);
            }
            assert_eq!(
                coll.kind,
                Some(call.kind),
                "collective call kind mismatch across ranks"
            );
            assert_eq!(
                coll.file,
                Some(call.file),
                "collective call file mismatch across ranks"
            );
            assert!(coll.arrived[rank].is_none(), "rank arrived twice");
            coll.arrived[rank] = Some(call.regions.clone());
            coll.count += 1;
            self.procs[p].state = PState::CollWait;
        }
        self.sync_proc_span(p, now);
        if self.programs[prog].coll.count < self.programs[prog].nprocs() {
            return;
        }
        self.coll_launch(now, prog);
    }

    fn coll_launch(&mut self, now: SimTime, prog: usize) {
        let (file, kind, per_rank) = {
            let coll = &self.programs[prog].coll;
            let per_rank: Vec<Vec<FileRegion>> = coll
                .arrived
                .iter()
                .map(|o| o.clone().unwrap_or_default())
                .collect();
            (
                coll.file.expect("file set"),
                coll.kind.expect("kind set"),
                per_rank,
            )
        };
        let plan = plan_collective(file, &per_rank, &self.cfg.collective);
        let Some(plan) = plan else {
            // Nothing requested — resume everyone immediately.
            self.programs[prog].coll_exchange = (0, 0);
            self.coll_resume(now, prog);
            return;
        };
        self.programs[prog].coll_exchange = (plan.exchange_bytes, plan.exchange_msgs);
        let group = self.new_group(Purpose::CollIo { prog });
        let proc_base = self.programs[prog].procs.start;
        for agg in &plan.aggregators {
            let agg_proc = proc_base + agg.agg_rank;
            let node = self.procs[agg_proc].node;
            let ctx = self.effective_ctx(prog, self.procs[agg_proc].ctx);
            let covers: Vec<(FileId, FileRegion)> =
                agg.ios.iter().map(|io| (io.file, io.cover)).collect();
            self.issue_covers(now, group, node, ctx, kind, &covers);
        }
        self.finish_if_empty(now, group);
    }

    pub(crate) fn coll_io_done(&mut self, now: SimTime, prog: usize) {
        // Shuffle phase: rounds of point-to-point messages plus the moved
        // volume spread over the compute-node NICs.
        let (bytes, msgs) = self.programs[prog].coll_exchange;
        let nprocs = self.programs[prog].nprocs() as u64;
        let rounds = msgs.div_ceil(nprocs.max(1));
        let per_node = bytes / self.cfg.num_compute_nodes.max(1) as u64;
        let exchange = SimDuration(self.cfg.net_latency.nanos() * rounds)
            + SimDuration::for_transfer(per_node, self.cfg.net_bandwidth);
        let group = self.new_group(Purpose::CollResume { prog });
        self.groups.get_mut(group).expect("new group").remaining = 1;
        self.queue.schedule(now.saturating_add(exchange), Ev::SubDone { group });
    }

    pub(crate) fn coll_resume(&mut self, now: SimTime, prog: usize) {
        let range = self.programs[prog].procs.clone();
        let proc_base = range.start;
        let mut total = 0u64;
        let kind = self.programs[prog].coll.kind.unwrap_or(IoKind::Read);
        for rank in 0..range.len() {
            let p = proc_base + rank;
            let regions = self.programs[prog].coll.arrived[rank]
                .take()
                .unwrap_or_default();
            let bytes: u64 = regions.iter().map(|r| r.len).sum();
            total += bytes;
            let dur = now.since(self.procs[p].op_start);
            self.procs[p].clock.record_io(dur, bytes);
            self.procs[p].last_io_end = now;
            self.procs[p].pos += 1;
            self.programs[prog].io_time = self.programs[prog].io_time.saturating_add(dur);
            self.procs[p].state = PState::Computing;
            self.sync_proc_span(p, now);
            self.queue.schedule(now, Ev::ProcReady(p));
        }
        {
            let program = &mut self.programs[prog];
            program.coll.count = 0;
            program.coll.kind = None;
            program.coll.file = None;
            match kind {
                IoKind::Read => program.bytes_read += total,
                IoKind::Write => program.bytes_written += total,
            }
        }
        self.tele.count(
            match kind {
                IoKind::Read => "io.bytes_read",
                IoKind::Write => "io.bytes_written",
            },
            total,
        );
        self.timeline.record(now, total as f64);
    }

    // ----- group dispatch -------------------------------------------------

    pub(crate) fn dispatch_group(&mut self, now: SimTime, group: Group) {
        if self.tele.enabled() {
            let secs = now.since(group.opened).as_secs_f64();
            let name = format!("group.latency_secs.{}", group.purpose.label());
            self.tele.observe(&name, secs);
        }
        match group.purpose {
            Purpose::VanillaRegion { proc } => self.vanilla_issue_next(now, proc),
            Purpose::DirectFetch { proc } => self.direct_fetch_done(now, proc),
            Purpose::S2Prefetch { proc, file, region } => {
                self.s2_prefetch_done(now, proc, file, region)
            }
            Purpose::CollIo { prog } => self.coll_io_done(now, prog),
            Purpose::CollResume { prog } => self.coll_resume(now, prog),
            Purpose::PhaseFill { prog } => self.phase_fill_done(now, prog),
            Purpose::PhaseWriteback { prog } => self.phase_writeback_done(now, prog),
            Purpose::PhasePrefetch { prog } => self.phase_prefetch_done(now, prog),
            Purpose::FlushWriteback { prog, finalize } => {
                self.flush_done(now, prog, finalize)
            }
        }
    }
}
