//! The data-driven execution machinery (DualPar phases) and Strategy-2
//! application-level prefetching.

use crate::config::IoStrategy;
use crate::engine::{Cluster, Ev, PState, Phase, Purpose};
use dualpar_core::{expected_fill_time, ghost_walk, plan_prefetch, plan_writeback, ProgramId};
use dualpar_disk::{IoCtx, IoKind};
use dualpar_mpiio::IoCall;
use dualpar_pfs::{FileId, FileRegion};
use dualpar_sim::{SimTime};

/// Key identifying a region in the in-flight prefetch table.
fn region_key(file: FileId, r: FileRegion) -> (u32, u64, u64) {
    (file.0, r.offset, r.len)
}

impl Cluster {
    /// The CRM daemon context for a (program, node) pair — the disk-level
    /// issuing identity of batched requests (one per node, like the paper's
    /// per-node CRM).
    fn crm_ctx(&self, prog: usize, node: u32) -> IoCtx {
        IoCtx(0x8000_0000 | ((prog as u32) << 8) | node)
    }

    // ----- data-driven I/O entry -----------------------------------------

    pub(crate) fn dd_io(&mut self, now: SimTime, p: usize, call: &IoCall) {
        match call.kind {
            IoKind::Read => self.dd_read(now, p, call),
            IoKind::Write => self.dd_write(now, p, call),
        }
    }

    fn dd_read(&mut self, now: SimTime, p: usize, call: &IoCall) {
        // Probe the global cache (consuming on hit).
        let node = self.procs[p].node;
        let all_present = call
            .regions
            .iter()
            .all(|r| self.cache.contains(call.file, *r));
        if all_present {
            let mut homes = std::mem::take(&mut self.homes_scratch);
            homes.clear();
            for r in &call.regions {
                let res = self.cache.read(call.file, *r, now);
                homes.extend(res.homes);
            }
            let latency = self.cache_access_time(node, &homes);
            self.homes_scratch = homes;
            let done = now.saturating_add(latency);
            self.procs[p].state = PState::Computing;
            // Account the op at its completion instant.
            let bytes = call.bytes();
            let dur = done.since(self.procs[p].op_start);
            self.procs[p].clock.record_io(dur, bytes);
            self.procs[p].last_io_end = done;
            self.procs[p].pos += 1;
            let prog = self.procs[p].prog;
            self.programs[prog].io_time = self.programs[prog].io_time.saturating_add(dur);
            self.programs[prog].bytes_read += bytes;
            self.tele.count("io.bytes_read", bytes);
            self.timeline.record(done, bytes as f64);
            self.proc_blocked_span(p, now, done);
            self.queue.schedule(done, Ev::ProcReady(p));
            return;
        }
        // Miss. If this op already triggered a phase, the prefetched data
        // was wrong (data-dependent access): fetch directly from the
        // servers, as the real system does once the normal process detects
        // the miss.
        if self.procs[p].miss_trigger_op == Some(self.procs[p].pos) {
            self.dd_direct_fetch(now, p, call);
            return;
        }
        let pos = self.procs[p].pos;
        self.procs[p].miss_trigger_op = Some(pos);
        self.dd_suspend(now, p, true);
    }

    fn dd_write(&mut self, now: SimTime, p: usize, call: &IoCall) {
        let node = self.procs[p].node;
        let owner = self.procs[p].owner;
        let mut homes = std::mem::take(&mut self.homes_scratch);
        homes.clear();
        for r in &call.regions {
            homes.extend(self.cache.put_write(owner, call.file, *r, now));
        }
        let latency = self.cache_access_time(node, &homes);
        self.homes_scratch = homes;
        let done = now.saturating_add(latency);
        let bytes = call.bytes();
        let dur = done.since(self.procs[p].op_start);
        self.procs[p].clock.record_io(dur, bytes);
        self.procs[p].last_io_end = done;
        self.procs[p].pos += 1;
        let prog = self.procs[p].prog;
        self.programs[prog].io_time = self.programs[prog].io_time.saturating_add(dur);
        self.programs[prog].bytes_written += bytes;
        self.tele.count("io.bytes_written", bytes);
        self.tele
            .gauge_max("cache.dirty_bytes_max", self.cache.dirty_bytes() as f64);
        self.timeline.record(done, bytes as f64);
        // The write blocks `[now, done]`; a quota suspension below then
        // replaces the (zero-length) compute span this opens at `done`.
        self.proc_blocked_span(p, now, done);
        // Quota check: a full cache suspends the process until the
        // program-wide write-back (§IV-C "when caches assigned to every
        // process of a program are filled ...").
        if self.cache.usage(owner) >= self.cfg.dualpar.cache_quota {
            self.dd_suspend(done, p, false);
        } else {
            self.procs[p].state = PState::Computing;
            self.queue.schedule(done, Ev::ProcReady(p));
        }
    }

    /// Fetch the call's *actual* regions directly (mis-prediction escape).
    fn dd_direct_fetch(&mut self, now: SimTime, p: usize, call: &IoCall) {
        let node = self.procs[p].node;
        let ctx = self.effective_ctx(self.procs[p].prog, self.procs[p].ctx);
        let covers: Vec<(FileId, FileRegion)> =
            call.regions.iter().map(|r| (call.file, *r)).collect();
        self.procs[p].direct_pending = true;
        self.procs[p].state = PState::S2Wait {
            op: self.procs[p].pos,
        };
        self.sync_proc_span(p, now);
        let group = self.new_group(Purpose::DirectFetch { proc: p });
        self.issue_covers(now, group, node, ctx, IoKind::Read, &covers);
        self.finish_if_empty(now, group);
    }

    pub(crate) fn direct_fetch_done(&mut self, now: SimTime, p: usize) {
        self.procs[p].direct_pending = false;
        if !self.procs[p].s2_waiting.is_empty() {
            return; // still waiting on inflight prefetches (Strategy 2)
        }
        let op = match self.procs[p].state {
            PState::S2Wait { op } => op,
            ref other => unreachable!("direct fetch done in state {other:?}"),
        };
        let script = std::sync::Arc::clone(&self.procs[p].script);
        let call = match &script.ops[op] {
            dualpar_mpiio::Op::Io(c) => c,
            _ => unreachable!(),
        };
        // Mark any cached parts of the call consumed (prefetch-usage
        // bookkeeping); the directly fetched parts bypass the cache.
        for r in &call.regions {
            self.cache.read(call.file, *r, now);
        }
        self.complete_io_op(now, p, call);
    }

    // ----- suspension & ghost pre-execution -------------------------------

    /// Suspend a process in the data-driven mode at time `at` (≥ now).
    /// `retry_op` is true when the current op must re-execute on resume.
    fn dd_suspend(&mut self, at: SimTime, p: usize, retry_op: bool) {
        let prog = self.procs[p].prog;
        // `at` may lie in the future (the suspension takes effect when the
        // triggering op completes), so stamp the trace record with the
        // current simulated time to keep it monotone; `at` rides as payload.
        self.tele
            .event(self.queue.now().as_secs_f64(), "pec", "suspend", |e| {
                e.u64("proc", p as u64)
                    .u64("program", prog as u64)
                    .u64("retry", retry_op as u64)
                    .f64("at", at.as_secs_f64())
            });
        self.procs[p].state = PState::Suspended { retry_op };
        // Open the suspended span before any ghost starts: the ghost
        // overlay nests inside it.
        self.sync_proc_span(p, at);
        self.procs[p].op_start = if retry_op {
            self.procs[p].op_start // read blocked since op start
        } else {
            at
        };
        match self.programs[prog].phase {
            Phase::Normal => {
                // First suspension opens a pre-execution phase.
                self.programs[prog].phase = Phase::PreExec { waiting_ghosts: 0 };
                self.programs[prog].phase_opened = at;
                self.tele.count("phase.opened", 1);
                self.start_ghost(at, p);
                let rate = self.procs[p].clock.io_bytes_per_sec();
                let bound = expected_fill_time(&self.cfg.dualpar, rate);
                let seq = self.programs[prog].phase_seq;
                let ev = self
                    .queue
                    .schedule(at + bound, Ev::PhaseTimeout { prog, seq });
                self.programs[prog].phase_timeout = Some(ev);
            }
            Phase::PreExec { .. } => {
                self.start_ghost(at, p);
            }
            // A batch is already in flight: just stay suspended and resume
            // with everyone else; no recording this round.
            Phase::Fill | Phase::Writeback | Phase::Prefetch => {}
        }
        self.check_phase_ready(at, prog);
    }

    /// Launch the ghost pre-execution for a suspended process: walk the
    /// script, account the (retained) computation as ghost runtime.
    fn start_ghost(&mut self, at: SimTime, p: usize) {
        let prog = self.procs[p].prog;
        if self.tele.spans_enabled() {
            let key = crate::engine::proc_span_key(prog, self.procs[p].rank);
            self.procs[p].ghost_span = self.tele.span_open(
                self.queue.now().as_secs_f64(),
                at.as_secs_f64(),
                "proc.ghost",
                self.procs[p].state_span,
                key,
            );
        }
        let run = ghost_walk(
            &self.procs[p].script,
            self.procs[p].pos,
            self.cfg.dualpar.cache_quota,
        );
        self.procs[p].phase_bytes = run.space;
        self.procs[p].pending_ghost = run.prefetch;
        if let Phase::PreExec { waiting_ghosts } = &mut self.programs[prog].phase {
            *waiting_ghosts += 1;
        }
        let ghost_time = if self.cfg.dualpar.ghost_slice_compute {
            dualpar_sim::SimDuration::ZERO
        } else {
            run.compute
        };
        let ev = self
            .queue
            .schedule(at.saturating_add(ghost_time), Ev::GhostDone { prog, proc: p });
        self.procs[p].ghost_ev = Some(ev);
    }

    pub(crate) fn on_ghost_done(&mut self, now: SimTime, prog: usize, p: usize) {
        self.procs[p].ghost_ev = None;
        self.close_ghost_span(p, now);
        let owner = self.procs[p].owner;
        let recorded: Vec<_> = self.procs[p].pending_ghost.drain(..).collect();
        self.programs[prog]
            .recordings
            .extend(recorded.into_iter().map(|(f, r)| (owner, f, r)));
        if let Phase::PreExec { waiting_ghosts } = &mut self.programs[prog].phase {
            *waiting_ghosts -= 1;
        }
        self.check_phase_ready(now, prog);
    }

    pub(crate) fn on_phase_timeout(&mut self, now: SimTime, prog: usize, seq: u64) {
        if self.programs[prog].phase_seq != seq {
            return; // stale timer
        }
        if !matches!(self.programs[prog].phase, Phase::PreExec { .. }) {
            return;
        }
        // Stop unfinished ghosts, harvesting what they recorded (§IV-C:
        // "when the time period expires, all unfinished pre-executions are
        // stopped").
        for p in self.programs[prog].procs.clone() {
            if let Some(ev) = self.procs[p].ghost_ev.take() {
                self.queue.cancel(ev);
                self.close_ghost_span(p, now);
                let owner = self.procs[p].owner;
                let recorded: Vec<_> = self.procs[p].pending_ghost.drain(..).collect();
                self.programs[prog]
                    .recordings
                    .extend(recorded.into_iter().map(|(f, r)| (owner, f, r)));
            }
        }
        self.issue_phase_batch(now, prog);
    }

    /// A phase is ready when no process can make progress: every live
    /// process is suspended (or passively blocked behind one that is) and
    /// all ghosts have paused.
    pub(crate) fn check_phase_ready(&mut self, now: SimTime, prog: usize) {
        let program = &self.programs[prog];
        let Phase::PreExec { waiting_ghosts } = program.phase else {
            return;
        };
        if waiting_ghosts > 0 {
            return;
        }
        let mut any_suspended = false;
        for p in program.procs.clone() {
            match self.procs[p].state {
                PState::Suspended { .. } => any_suspended = true,
                PState::BarrierWait(_) | PState::CollWait | PState::Done => {}
                _ => return, // someone can still run
            }
        }
        if any_suspended {
            self.issue_phase_batch(now, prog);
        }
    }

    // ----- the batch ------------------------------------------------------

    fn issue_phase_batch(&mut self, now: SimTime, prog: usize) {
        // Close the phase bookkeeping.
        self.programs[prog].phase_seq += 1;
        if let Some(ev) = self.programs[prog].phase_timeout.take() {
            self.queue.cancel(ev);
        }
        self.programs[prog].phases += 1;

        // Mis-prefetch epoch accounting: measured "when the next
        // pre-execution begins" (§IV-C) — i.e. right here, before new data
        // is prefetched.
        let adaptive = self.programs[prog].strategy == IoStrategy::DualPar;
        for p in self.programs[prog].procs.clone() {
            let owner = self.procs[p].owner;
            if let Some(ratio) = self.cache.end_prefetch_epoch(owner) {
                self.programs[prog].mis_sum += ratio;
                self.programs[prog].mis_n += 1;
                if adaptive {
                    self.emc.report_misprefetch(ProgramId(prog as u32), ratio);
                }
            }
        }

        // Write-back plan from the dirty cache contents, then release the
        // quota held by the previous phase's (clean) data.
        let files = self.programs[prog].files.clone();
        let dirty = self.drain_dirty_for(&files);
        self.cache.evict_clean_for(&files);
        let wb = plan_writeback(&self.cfg.dualpar, dirty);

        // Prefetch plan from the ghost recordings.
        let recordings = std::mem::take(&mut self.programs[prog].recordings);
        // Re-insert attribution later: build the plan from bare regions.
        let bare: Vec<(FileId, FileRegion)> =
            recordings.iter().map(|&(_, f, r)| (f, r)).collect();
        let recorded_n = bare.len() as u64;
        let pf = plan_prefetch(&self.cfg.dualpar, bare);
        // Phase + coalescing telemetry: pre-execution duration, staged batch
        // sizes, and how far planning shrank the recorded region list.
        let preexec_secs = now.since(self.programs[prog].phase_opened).as_secs_f64();
        let wb_n = wb.writes.len() as u64;
        let pf_n = pf.reads.len() as u64;
        let seq = self.programs[prog].phase_seq;
        self.tele.count("phase.batches", 1);
        self.tele.observe("phase.preexec_secs", preexec_secs);
        self.tele.count("phase.recorded_regions", recorded_n);
        self.tele.count("phase.writeback_covers", wb_n);
        self.tele.count("phase.prefetch_covers", pf_n);
        self.tele.event(now.as_secs_f64(), "crm", "phase", |e| {
            e.u64("program", prog as u64)
                .u64("seq", seq)
                .u64("recorded", recorded_n)
                .u64("writes", wb_n)
                .u64("reads", pf_n)
                .f64("preexec_secs", preexec_secs)
        });
        self.programs[prog].staged_writes = wb.writes;
        self.programs[prog].staged_prefetch = pf.reads;
        // Stash per-owner recordings for cache insertion at prefetch
        // completion.
        self.programs[prog].recordings = recordings;

        if !wb.fill_reads.is_empty() {
            self.programs[prog].phase = Phase::Fill;
            let group = self.new_group(Purpose::PhaseFill { prog });
            let covers = wb.fill_reads;
            self.issue_batch_covers(now, prog, group, IoKind::Read, &covers);
            self.finish_if_empty(now, group);
        } else {
            self.phase_fill_done(now, prog);
        }
    }

    /// Issue a batch of covers through the per-node CRM daemons. Every
    /// cover is decomposed along cache-chunk boundaries and each piece is
    /// issued by the compute node that is the chunk's *home* — write-back
    /// data leaves from the NIC of the node whose memory holds it, and
    /// prefetched data is pulled by the node that will cache it. The
    /// pieces from one node are issued in ascending offset order; the
    /// disk-level dispatch merge re-fuses the interleaved chunk streams
    /// into long media accesses.
    fn issue_batch_covers(
        &mut self,
        now: SimTime,
        prog: usize,
        group: dualpar_sim::SlabKey,
        kind: IoKind,
        covers: &[(FileId, FileRegion)],
    ) {
        let chunk = self.cache.config().chunk_size;
        let mut per_node: std::collections::BTreeMap<u32, Vec<(FileId, FileRegion)>> =
            std::collections::BTreeMap::new();
        for &(file, region) in covers {
            let mut off = region.offset;
            let end = region.end();
            while off < end {
                let idx = off / chunk;
                let piece_end = ((idx + 1) * chunk).min(end);
                let home = self.cache.home_of(file, idx).0;
                per_node
                    .entry(home)
                    .or_default()
                    .push((file, FileRegion::new(off, piece_end - off)));
                off = piece_end;
            }
        }
        for (node, pieces) in per_node {
            let ctx = self.effective_ctx(prog, self.crm_ctx(prog, node));
            let n = self.issue_covers(now, group, node, ctx, kind, &pieces);
            self.tele.count("crm.subrequests", n as u64);
        }
    }

    pub(crate) fn phase_fill_done(&mut self, now: SimTime, prog: usize) {
        let writes = std::mem::take(&mut self.programs[prog].staged_writes);
        if writes.is_empty() {
            self.phase_writeback_done(now, prog);
            return;
        }
        self.programs[prog].phase = Phase::Writeback;
        let covers: Vec<(FileId, FileRegion)> =
            writes.iter().map(|io| (io.file, io.cover)).collect();
        let group = self.new_group(Purpose::PhaseWriteback { prog });
        self.issue_batch_covers(now, prog, group, IoKind::Write, &covers);
        self.finish_if_empty(now, group);
    }

    pub(crate) fn phase_writeback_done(&mut self, now: SimTime, prog: usize) {
        let reads = std::mem::take(&mut self.programs[prog].staged_prefetch);
        if reads.is_empty() {
            self.phase_prefetch_done(now, prog);
            return;
        }
        self.programs[prog].phase = Phase::Prefetch;
        let covers: Vec<(FileId, FileRegion)> =
            reads.iter().map(|io| (io.file, io.cover)).collect();
        let group = self.new_group(Purpose::PhasePrefetch { prog });
        self.issue_batch_covers(now, prog, group, IoKind::Read, &covers);
        self.finish_if_empty(now, group);
    }

    pub(crate) fn phase_prefetch_done(&mut self, now: SimTime, prog: usize) {
        // Deposit the prefetched data in the cache, attributed to the
        // processes whose ghosts recorded it.
        let recordings = std::mem::take(&mut self.programs[prog].recordings);
        for (owner, file, region) in recordings {
            self.cache.put_prefetch(owner, file, region, now);
        }
        // Resume every suspended process.
        self.programs[prog].phase = Phase::Normal;
        for p in self.programs[prog].procs.clone() {
            if let PState::Suspended { .. } = self.procs[p].state {
                let dur = now.since(self.procs[p].op_start);
                let bytes = self.procs[p].phase_bytes;
                self.procs[p].clock.record_io(dur, bytes);
                self.procs[p].last_io_end = now;
                self.procs[p].phase_bytes = 0;
                self.programs[prog].io_time = self.programs[prog].io_time.saturating_add(dur);
                self.procs[p].state = PState::Computing;
                self.sync_proc_span(p, now);
                self.tele.event(now.as_secs_f64(), "pec", "resume", |e| {
                    e.u64("proc", p as u64).u64("program", prog as u64)
                });
                self.queue.schedule(now, Ev::ProcReady(p));
            }
        }
    }

    // ----- stand-alone flushes --------------------------------------------

    /// Write dirty cache data back when a program leaves the data-driven
    /// mode (the cache is bypassed in computation-driven execution, so
    /// buffered writes must reach the servers first).
    pub(crate) fn flush_on_revert(&mut self, now: SimTime, prog: usize) {
        let files = self.programs[prog].files.clone();
        let dirty = self.drain_dirty_for(&files);
        self.cache.evict_clean_for(&files);
        if !dirty.is_empty() {
            self.issue_flush(now, prog, dirty, false);
        }
    }

    /// Issue a write-back of `dirty` as one group (fill reads and writes
    /// together; the staging order does not change the makespan here).
    pub(crate) fn issue_flush(
        &mut self,
        now: SimTime,
        prog: usize,
        dirty: Vec<(FileId, FileRegion)>,
        finalize: bool,
    ) {
        let plan = plan_writeback(&self.cfg.dualpar, dirty);
        let group = self.new_group(Purpose::FlushWriteback { prog, finalize });
        if !plan.fill_reads.is_empty() {
            let covers = plan.fill_reads.clone();
            self.issue_batch_covers(now, prog, group, IoKind::Read, &covers);
        }
        let covers: Vec<(FileId, FileRegion)> =
            plan.writes.iter().map(|io| (io.file, io.cover)).collect();
        self.issue_batch_covers(now, prog, group, IoKind::Write, &covers);
        self.finish_if_empty(now, group);
    }

    pub(crate) fn flush_done(&mut self, now: SimTime, prog: usize, finalize: bool) {
        if finalize {
            self.finish_program(now, prog);
        }
    }

    // ----- Strategy 2: prefetch-overlap -----------------------------------

    pub(crate) fn s2_read(&mut self, now: SimTime, p: usize, call: &IoCall) {
        let node = self.procs[p].node;
        // Which regions are already cached?
        let missing: Vec<FileRegion> = call
            .regions
            .iter()
            .copied()
            .filter(|r| !self.cache.contains(call.file, *r))
            .collect();
        if missing.is_empty() {
            let mut homes = std::mem::take(&mut self.homes_scratch);
            homes.clear();
            for r in &call.regions {
                let res = self.cache.read(call.file, *r, now);
                homes.extend(res.homes);
            }
            let latency = self.cache_access_time(node, &homes);
            self.homes_scratch = homes;
            let done = now.saturating_add(latency);
            self.procs[p].state = PState::Computing;
            let bytes = call.bytes();
            let dur = done.since(self.procs[p].op_start);
            self.procs[p].clock.record_io(dur, bytes);
            self.procs[p].last_io_end = done;
            self.procs[p].pos += 1;
            let prog = self.procs[p].prog;
            self.programs[prog].io_time = self.programs[prog].io_time.saturating_add(dur);
            self.programs[prog].bytes_read += bytes;
            self.tele.count("io.bytes_read", bytes);
            self.timeline.record(done, bytes as f64);
            self.proc_blocked_span(p, now, done);
            self.queue.schedule(done, Ev::ProcReady(p));
            return;
        }
        // Wait on in-flight prefetches covering missing regions; launch a
        // new pre-execution for the rest.
        let pos = self.procs[p].pos;
        let mut not_inflight = Vec::new();
        for r in &missing {
            let key = region_key(call.file, *r);
            if let Some(waiters) = self.s2_inflight.get_mut(&key) {
                waiters.push(p);
                self.procs[p].s2_waiting.insert(key);
            } else {
                not_inflight.push(*r);
            }
        }
        if !not_inflight.is_empty() {
            if self.procs[p].miss_trigger_op == Some(pos) {
                // Prediction failed earlier: fetch the leftovers directly.
                self.s2_direct(now, p, call.file, &not_inflight, call.bytes());
            } else {
                self.procs[p].miss_trigger_op = Some(pos);
                self.s2_launch_prefetch(now, p);
                // Re-check after launching: predicted regions are now in
                // flight; anything else (mis-predicted) goes direct.
                let mut leftover = Vec::new();
                for r in &not_inflight {
                    let key = region_key(call.file, *r);
                    if let Some(waiters) = self.s2_inflight.get_mut(&key) {
                        waiters.push(p);
                        self.procs[p].s2_waiting.insert(key);
                    } else {
                        leftover.push(*r);
                    }
                }
                if !leftover.is_empty() {
                    self.s2_direct(now, p, call.file, &leftover, call.bytes());
                }
            }
        }
        self.procs[p].state = PState::S2Wait { op: pos };
        self.sync_proc_span(p, now);
        // It is possible everything resolved synchronously (all waited
        // regions were already being fetched and completed in zero time) —
        // the completion paths handle that; nothing more to do here.
        if self.procs[p].s2_waiting.is_empty() && !self.procs[p].direct_pending {
            // Nothing is actually pending (e.g. raced completions): retry.
            self.procs[p].state = PState::Computing;
            self.sync_proc_span(p, now);
            self.queue.schedule(now, Ev::ProcReady(p));
        }
    }

    fn s2_direct(&mut self, now: SimTime, p: usize, file: FileId, regions: &[FileRegion], _bytes: u64) {
        let node = self.procs[p].node;
        let ctx = self.effective_ctx(self.procs[p].prog, self.procs[p].ctx);
        let covers: Vec<(FileId, FileRegion)> = regions.iter().map(|r| (file, *r)).collect();
        self.procs[p].direct_pending = true;
        let group = self.new_group(Purpose::DirectFetch { proc: p });
        self.issue_covers(now, group, node, ctx, IoKind::Read, &covers);
        self.finish_if_empty(now, group);
    }

    /// Strategy 2's pre-execution: computation is sliced out (Chen et al.'s
    /// approach, which the paper adopts for Strategy 2 in §II), so the
    /// predicted requests are issued immediately, one request per region,
    /// from this process's own context — exactly the trickle that the disk
    /// scheduler struggles to reorder.
    fn s2_launch_prefetch(&mut self, now: SimTime, p: usize) {
        let start = self.procs[p].ghost_pos.max(self.procs[p].pos);
        let run = ghost_walk(
            &self.procs[p].script,
            start,
            self.cfg.dualpar.cache_quota,
        );
        self.procs[p].ghost_pos = run.end_pos;
        // Every recorded region becomes "in flight" immediately (readers
        // can wait on it), but actual issuance is flow-controlled by the
        // per-process async window — only `s2_window` prefetches are ever
        // outstanding, so the disk scheduler sees the shallow queue of §II.
        for (file, region) in run.prefetch {
            let key = region_key(file, region);
            if self.s2_inflight.contains_key(&key) || self.cache.contains(file, region) {
                continue;
            }
            self.s2_inflight.insert(key, Vec::new());
            self.procs[p].s2_queue.push_back((file, region));
        }
        self.s2_pump(now, p);
    }

    /// Issue queued Strategy-2 prefetches up to the async window, each
    /// paying the library/posting overhead — the §II "time gaps between
    /// consecutive requests issued during the pre-execution".
    fn s2_pump(&mut self, now: SimTime, p: usize) {
        let node = self.procs[p].node;
        let ctx = self.effective_ctx(self.procs[p].prog, self.procs[p].ctx);
        let mut at = now;
        while self.procs[p].s2_outstanding < self.cfg.s2_window {
            let Some((file, region)) = self.procs[p].s2_queue.pop_front() else {
                break;
            };
            let gap = self.cfg.s2_issue_gap.nanos();
            if gap > 0 {
                let jitter = self.rng.uniform_u64(gap / 2, gap + gap / 2 + 1);
                at += dualpar_sim::SimDuration(jitter);
            }
            self.procs[p].s2_outstanding += 1;
            let group = self.new_group(Purpose::S2Prefetch {
                proc: p,
                file,
                region,
            });
            self.issue_covers(at, group, node, ctx, IoKind::Read, &[(file, region)]);
            self.finish_if_empty(at, group);
        }
    }

    pub(crate) fn s2_prefetch_done(
        &mut self,
        now: SimTime,
        p: usize,
        file: FileId,
        region: FileRegion,
    ) {
        let owner = self.procs[p].owner;
        self.cache.put_prefetch(owner, file, region, now);
        self.procs[p].s2_outstanding = self.procs[p].s2_outstanding.saturating_sub(1);
        self.s2_pump(now, p);
        let key = region_key(file, region);
        let waiters = self.s2_inflight.remove(&key).unwrap_or_default();
        for w in waiters {
            self.procs[w].s2_waiting.remove(&key);
            if self.procs[w].s2_waiting.is_empty() && !self.procs[w].direct_pending {
                if let PState::S2Wait { op } = self.procs[w].state {
                    let script = std::sync::Arc::clone(&self.procs[w].script);
                    let call = match &script.ops[op] {
                        dualpar_mpiio::Op::Io(c) => c,
                        _ => unreachable!(),
                    };
                    // Consume from cache (mark used).
                    for r in &call.regions {
                        self.cache.read(call.file, *r, now);
                    }
                    self.complete_io_op(now, w, call);
                }
            }
        }
    }
}
