//! The data-server shard: everything one PVFS2 data server owns — its
//! event queue, disk, response link, write-back buffer, and telemetry —
//! packaged as a [`WindowCell`] so the conservative-parallel runtime in
//! `simcore::shard` can execute server windows off the coordinator thread.
//!
//! The partition rule is the paper's own architecture: client processes
//! talk to data servers only through the network, and every crossing pays
//! at least `net_latency` of one-way delay. That latency is the lookahead:
//! a server executing events with `t < horizon ≤ global_next + net_latency`
//! can never miss a message from another shard, because anything sent
//! during the window delivers at or after the horizon. Cross-shard sends
//! therefore never touch a foreign queue directly — they accumulate in the
//! shard's `outbox` as [`CrossShardMsg`]s and are applied by the
//! coordinator at the window barrier, in an order that is a pure function
//! of simulation state (see `Cluster::exchange`).

use crate::config::{ClusterConfig, CtxMode, ServerWriteMode};
use dualpar_disk::{Disk, DiskRequest, IoCtx, IoKind, Lbn, StartOutcome};
use dualpar_sim::{EventQueue, FxHashMap, Link, SimDuration, SimTime, SlabKey, WindowCell};
use dualpar_telemetry::{SpanId, Telemetry};

/// One disk-bound sub-request (a resolved LBN run on one server), carried
/// over the wire from the client shard. The client mints `id`s from a
/// monotonic counter and attaches everything the server needs to complete
/// the request autonomously: the completion group to acknowledge, the
/// response size, and the open client-side spans (`life`/`stage`) whose
/// lifecycle the server continues with shard-tagged ids.
#[derive(Debug, Clone)]
pub(crate) struct SubReq {
    pub id: u64,
    pub lbn: Lbn,
    pub sectors: u64,
    pub kind: IoKind,
    pub ctx: IoCtx,
    /// Completion group the ack resolves against (client-side slab key).
    pub group: SlabKey,
    /// Response payload size (data for reads, zero for writes).
    pub resp_bytes: u64,
    /// The sub-request's `req.life` span (INVALID when spans are off).
    pub life: SpanId,
    /// The open `req.issue` stage span the server closes on receipt.
    pub stage: SpanId,
}

/// A message crossing the client/server shard boundary, delivered at the
/// window barrier. The topology is a star: clients send requests, servers
/// send acks, shards never talk to each other.
#[derive(Debug, Clone)]
pub(crate) enum CrossShardMsg {
    /// Client → server: a sub-request arriving at a data server's NIC.
    Request { server: u32, sub: SubReq },
    /// Server → client: the response delivery completing one sub-request
    /// of a completion group.
    Ack { group: SlabKey },
}

/// Server-side record of a sub-request that is in the disk path (queued or
/// in service). Write-back writes are acknowledged at receipt and never
/// enter this map, so a flush-daemon replay of their ids is a clean miss —
/// the same stale-id behaviour the old global slab's generation check gave.
#[derive(Debug, Clone, Copy)]
struct PendingSub {
    group: SlabKey,
    resp_bytes: u64,
    life: SpanId,
    /// The currently-open lifecycle stage (`server.queue` → `disk.service`).
    stage: SpanId,
}

/// Events local to one data-server shard.
#[derive(Debug, Clone)]
pub(crate) enum SEv {
    /// A request message arrived at this server (scheduled by the exchange).
    Recv(SubReq),
    /// Poke the disk (idle-anticipation timer expired).
    DiskKick,
    /// The disk finished its in-flight request.
    DiskDone,
    /// The write-back daemon flushes the dirty buffer.
    Flush,
}

/// One data server's complete simulation state.
pub(crate) struct ServerShard {
    pub id: u32,
    pub queue: EventQueue<SEv>,
    pub disk: Disk,
    /// The server's response NIC (serializes acks back to the clients).
    pub link: Link,
    /// Buffered (acknowledged, unflushed) writes in WriteBack mode.
    dirty: Vec<DiskRequest>,
    flush_scheduled: bool,
    pending: FxHashMap<u64, PendingSub>,
    /// Outbound acks of the current window, drained by the exchange.
    /// Time-monotone: the link serializes sends and event times within a
    /// window are non-decreasing.
    pub outbox: Vec<(SimTime, CrossShardMsg)>,
    /// Shard-local telemetry (tag `id + 1`), stitched into the client's
    /// stream by `Telemetry::absorb_shards` after the run.
    pub tele: Telemetry,
    pub events_processed: u64,
    pub last_event_time: SimTime,
    write_mode: ServerWriteMode,
    msg_header: u64,
    flush_interval: SimDuration,
    /// The flush daemon's effective disk context, fixed by `ctx_mode`.
    flush_ctx: IoCtx,
}

impl ServerShard {
    pub fn new(id: u32, cfg: &ClusterConfig) -> Self {
        // The daemon is one kernel context; what the disk scheduler sees
        // depends on the context mode (mirrors `Cluster::effective_ctx`
        // for program 0 and the daemon's fine identity).
        let flush_ctx = match cfg.ctx_mode {
            CtxMode::PerServer => IoCtx(0),
            CtxMode::PerClient => IoCtx(0xFFFF_FFFF),
            CtxMode::PerProgram => IoCtx(1),
        };
        ServerShard {
            id,
            queue: EventQueue::new(),
            disk: Disk::new(cfg.disk.clone(), cfg.scheduler, cfg.trace_disks),
            link: Link::new(cfg.net_latency, cfg.net_bandwidth),
            dirty: Vec::new(),
            flush_scheduled: false,
            pending: FxHashMap::default(),
            outbox: Vec::new(),
            tele: Telemetry::for_shard(&cfg.telemetry, id as u16 + 1),
            events_processed: 0,
            last_event_time: SimTime::ZERO,
            write_mode: cfg.server_write_mode,
            msg_header: cfg.msg_header,
            flush_interval: cfg.server_flush_interval,
            flush_ctx,
        }
    }

    /// Static counter name for an event kind (dispatch accounting; the
    /// names match the old monolithic engine so merged totals line up).
    fn ev_counter(ev: &SEv) -> &'static str {
        match ev {
            SEv::Recv(_) => "engine.ev.server_recv",
            SEv::DiskKick => "engine.ev.disk_kick",
            SEv::DiskDone => "engine.ev.disk_done",
            SEv::Flush => "engine.ev.server_flush",
        }
    }

    fn handle(&mut self, now: SimTime, ev: SEv) {
        match ev {
            SEv::Recv(sub) => self.on_recv(now, sub),
            SEv::DiskKick => {
                if !self.disk.is_busy() {
                    self.kick_disk(now);
                }
            }
            SEv::DiskDone => self.on_disk_done(now),
            SEv::Flush => self.on_flush(now),
        }
    }

    fn on_recv(&mut self, now: SimTime, sub: SubReq) {
        let req = DiskRequest::new(sub.id, sub.ctx, sub.kind, sub.lbn, sub.sectors, now);
        let buffer_write = sub.kind == IoKind::Write && self.write_mode == ServerWriteMode::WriteBack;
        if buffer_write {
            // Acknowledge immediately; the flush daemon owns the disk
            // write from here.
            let deliver = self
                .link
                .send(now, self.msg_header.saturating_add(sub.resp_bytes));
            self.outbox
                .push((deliver, CrossShardMsg::Ack { group: sub.group }));
            if self.tele.spans_enabled() {
                // Buffered ack: the queue/disk stages are owned by the
                // flush daemon, so the lifecycle skips straight from issue
                // to ack. `stage`/`life` are client-tagged — their closes
                // are deferred to the merge.
                let stamp = now.as_secs_f64();
                self.tele.span_close(stamp, sub.stage, stamp);
                let ack = self.tele.span_open(stamp, stamp, "req.ack", sub.life, sub.id);
                self.tele.span_close(stamp, ack, deliver.as_secs_f64());
                self.tele.span_close(stamp, sub.life, deliver.as_secs_f64());
            }
            self.dirty.push(req);
            if !self.flush_scheduled {
                self.flush_scheduled = true;
                self.queue
                    .schedule(now.saturating_add(self.flush_interval), SEv::Flush);
            }
        } else {
            let mut stage = SpanId::INVALID;
            if self.tele.spans_enabled() {
                let stamp = now.as_secs_f64();
                self.tele.span_close(stamp, sub.stage, stamp);
                stage = self
                    .tele
                    .span_open(stamp, stamp, "server.queue", sub.life, sub.id);
            }
            self.pending.insert(
                sub.id,
                PendingSub {
                    group: sub.group,
                    resp_bytes: sub.resp_bytes,
                    life: sub.life,
                    stage,
                },
            );
            self.disk.enqueue(req);
            self.tele
                .gauge_max("disk.queue_depth_max", self.disk.queued() as f64);
            if !self.disk.is_busy() {
                self.kick_disk(now);
            }
        }
    }

    fn on_flush(&mut self, now: SimTime) {
        self.flush_scheduled = false;
        let mut dirty = std::mem::take(&mut self.dirty);
        if dirty.is_empty() {
            return;
        }
        // The flush daemon is one kernel context issuing in LBN order —
        // pdflush behaviour.
        dirty.sort_by_key(|r| r.lbn);
        for mut r in dirty {
            r.ctx = self.flush_ctx;
            self.disk.enqueue(r);
        }
        if !self.disk.is_busy() {
            self.kick_disk(now);
        }
        // The next timer is armed by the next write arrival.
    }

    fn on_disk_done(&mut self, now: SimTime) {
        let req = self.disk.complete();
        let (sid, rid) = (self.id as u64, req.id);
        self.tele.event(now.as_secs_f64(), "disk", "done", |e| {
            e.u64("server", sid).u64("id", rid)
        });
        for &id in req.merged_ids() {
            // A write-back flush can replay ids already acknowledged at
            // receipt; those were never inserted into `pending`, so the
            // lookup is a clean miss.
            if let Some(p) = self.pending.remove(&id) {
                let deliver = self
                    .link
                    .send(now, self.msg_header.saturating_add(p.resp_bytes));
                self.outbox
                    .push((deliver, CrossShardMsg::Ack { group: p.group }));
                if self.tele.spans_enabled() {
                    let stamp = now.as_secs_f64();
                    self.tele.span_close(stamp, p.stage, stamp);
                    let ack = self.tele.span_open(stamp, stamp, "req.ack", p.life, id);
                    self.tele.span_close(stamp, ack, deliver.as_secs_f64());
                    self.tele.span_close(stamp, p.life, deliver.as_secs_f64());
                }
            }
        }
        self.kick_disk(now);
    }

    fn kick_disk(&mut self, now: SimTime) {
        match self.disk.try_start(now) {
            StartOutcome::Started { finish } => {
                if self.tele.spans_enabled() {
                    // Queue merging is final once dispatch starts, so every
                    // absorbed sub-request enters service here. Flush-daemon
                    // replays carry ids retired at ack time and miss the
                    // pending map.
                    if let Some(req) = self.disk.in_flight() {
                        let stamp = now.as_secs_f64();
                        for &id in req.merged_ids() {
                            if let Some(p) = self.pending.get_mut(&id) {
                                let (life, stage) = (p.life, p.stage);
                                self.tele.span_close(stamp, stage, stamp);
                                p.stage = self.tele.span_open(stamp, stamp, "disk.service", life, id);
                            }
                        }
                    }
                }
                if self.tele.tracing() {
                    if let Some(req) = self.disk.in_flight() {
                        let (id, lbn, sectors) = (req.id, req.lbn, req.sectors);
                        let op = match req.kind {
                            IoKind::Read => "read",
                            IoKind::Write => "write",
                        };
                        let sid = self.id as u64;
                        self.tele.event(now.as_secs_f64(), "disk", "start", |e| {
                            e.u64("server", sid)
                                .u64("id", id)
                                .u64("lbn", lbn)
                                .u64("sectors", sectors)
                                .str("op", op)
                        });
                    }
                }
                self.queue.schedule(finish, SEv::DiskDone);
            }
            StartOutcome::Idle { until } => {
                self.queue.schedule(until, SEv::DiskKick);
            }
            StartOutcome::Quiescent => {}
        }
    }
}

impl WindowCell for ServerShard {
    fn run_window(&mut self, horizon: SimTime) -> u64 {
        let mut n = 0u64;
        while self.queue.peek_time().is_some_and(|t| t < horizon) {
            let (now, ev) = self.queue.pop().expect("peeked event present");
            dualpar_sim::strict_assert!(
                now >= self.last_event_time,
                "server event time went backwards: {:?} < {:?}",
                now,
                self.last_event_time
            );
            self.last_event_time = now;
            self.tele.count(Self::ev_counter(&ev), 1);
            self.tele
                .gauge_max("engine.queue_depth_max", self.queue.len() as f64);
            self.handle(now, ev);
            n += 1;
        }
        self.events_processed += n;
        n
    }
}
