//! Cluster and experiment configuration.

use dualpar_core::DualParConfig;
use dualpar_disk::{DiskParams, SchedulerKind};
use dualpar_mpiio::{CollectiveConfig, ProgramScript, SieveConfig};
use dualpar_sim::{SimDuration, SimTime};
use dualpar_telemetry::TelemetryConfig;
use serde::{Deserialize, Serialize};

/// How a program's I/O calls are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IoStrategy {
    /// Strategy 1 / "vanilla MPI-IO": every region of every call is issued
    /// synchronously, one region at a time per process.
    Vanilla,
    /// Collective I/O: calls marked collective synchronise all ranks and go
    /// through the two-phase planner; other calls behave like `Vanilla`.
    Collective,
    /// Strategy 2: application-level prefetching via pre-execution with
    /// computation sliced out; prefetch requests are issued the moment they
    /// are generated, aiming to hide I/O behind compute.
    PrefetchOverlap,
    /// Strategy 3 / DualPar with the data-driven mode forced on (used in
    /// the single-application experiments where "programs stay in the
    /// data-driven mode").
    DualParForced,
    /// Full adaptive DualPar: EMC switches the mode opportunistically.
    DualPar,
}

impl IoStrategy {
    /// True for the two DualPar variants.
    pub fn is_dualpar(self) -> bool {
        matches!(self, IoStrategy::DualPar | IoStrategy::DualParForced)
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            IoStrategy::Vanilla => "vanilla",
            IoStrategy::Collective => "collective",
            IoStrategy::PrefetchOverlap => "prefetch-overlap",
            IoStrategy::DualParForced => "dualpar-forced",
            IoStrategy::DualPar => "dualpar",
        }
    }
}

/// How requests map to disk-scheduler I/O contexts at the data servers.
///
/// On the paper's platform every data server runs one PVFS2 server process,
/// so the kernel's CFQ sees a single I/O context per disk regardless of
/// which MPI process originated a request (`PerServer`, the default). The
/// alternatives exist for the scheduler ablation: `PerClient` keys contexts
/// by the originating process/daemon (as if clients did direct I/O), and
/// `PerProgram` by program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CtxMode {
    /// One context per data server (PVFS2 reality; default).
    PerServer,
    /// One context per originating process/daemon.
    PerClient,
    /// One context per program.
    PerProgram,
}

/// How data servers handle write requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServerWriteMode {
    /// Writes are acknowledged when the disk completes them (default; the
    /// steady-state behaviour the paper's forced 1-second write-back
    /// produces for sustained writers).
    WriteThrough,
    /// Writes are acknowledged on arrival and flushed to disk by a
    /// periodic daemon — the paper's literal server configuration ("we
    /// force dirty pages being written back every one second"). The flush
    /// stream competes with reads at the disk scheduler.
    WriteBack,
}

/// Static description of the simulated cluster (paper §V: Darwin with nine
/// PVFS2 data servers, 64 KB striping, CFQ, Gigabit Ethernet).
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(default)]
pub struct ClusterConfig {
    /// Data servers (each with one disk).
    pub num_data_servers: u32,
    /// Compute nodes processes and cache homes spread over.
    pub num_compute_nodes: u32,
    /// PVFS2 stripe unit (also the cache chunk size).
    pub stripe_size: u64,
    /// Mechanical disk model.
    pub disk: DiskParams,
    /// Disk scheduler at every server.
    pub scheduler: SchedulerKind,
    /// One-way network latency.
    pub net_latency: SimDuration,
    /// Per-NIC bandwidth, bytes/sec (GigE ≈ 125 MB/s).
    pub net_bandwidth: u64,
    /// Request/response header size charged per message.
    pub msg_header: u64,
    /// Memory copy bandwidth for local cache hits.
    pub mem_bandwidth: u64,
    /// Extent-allocation policy.
    pub alloc: dualpar_pfs::AllocConfig,
    /// DualPar thresholds and quotas.
    pub dualpar: DualParConfig,
    /// Data-sieving policy for independent I/O.
    pub sieve: SieveConfig,
    /// Two-phase collective-I/O planner settings.
    pub collective: CollectiveConfig,
    /// Record full per-request disk traces (needed for the LBN figures).
    pub trace_disks: bool,
    /// Disk-scheduler context granularity (see [`CtxMode`]).
    pub ctx_mode: CtxMode,
    /// Server write handling (see [`ServerWriteMode`]).
    pub server_write_mode: ServerWriteMode,
    /// Flush period for [`ServerWriteMode::WriteBack`].
    pub server_flush_interval: SimDuration,
    /// Mean per-request client-side issue overhead for Strategy-2
    /// pre-execution prefetching (library call + posting cost); jittered
    /// ±50%. This is the "time gaps between consecutive requests issued
    /// during the pre-execution" of §II.
    pub s2_issue_gap: SimDuration,
    /// Maximum outstanding Strategy-2 prefetch requests per process (the
    /// async-I/O window the client library allows). Keeping this small is
    /// what leaves the disk scheduler "a limited number of outstanding
    /// requests" to sort (§II).
    pub s2_window: usize,
    /// Master seed for every deterministic random stream.
    pub seed: u64,
    /// Instrumentation level and trace capacity (off by default; absent
    /// from serialized configs written before telemetry existed).
    #[serde(default)]
    pub telemetry: TelemetryConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            num_data_servers: 9,
            num_compute_nodes: 4,
            stripe_size: 64 * 1024,
            disk: DiskParams::hdd_7200rpm(),
            scheduler: SchedulerKind::Cfq,
            net_latency: SimDuration::from_micros(50),
            net_bandwidth: 125_000_000,
            msg_header: 256,
            mem_bandwidth: 8_000_000_000,
            alloc: dualpar_pfs::AllocConfig::default(),
            dualpar: DualParConfig::default(),
            sieve: SieveConfig::default(),
            collective: CollectiveConfig::default(),
            trace_disks: false,
            ctx_mode: CtxMode::PerServer,
            server_write_mode: ServerWriteMode::WriteThrough,
            server_flush_interval: SimDuration::from_secs(1),
            s2_issue_gap: SimDuration::from_micros(50),
            s2_window: 4,
            seed: 42,
            telemetry: TelemetryConfig::default(),
        }
    }
}

/// A program to run: its script, strategy, and start time.
#[derive(Debug, Clone)]
pub struct ProgramSpec {
    /// Per-rank scripts.
    pub script: ProgramScript,
    /// Execution strategy.
    pub strategy: IoStrategy,
    /// Simulated submission time.
    pub start_at: SimTime,
}

impl ProgramSpec {
    /// A program starting at time zero.
    pub fn new(script: ProgramScript, strategy: IoStrategy) -> Self {
        ProgramSpec {
            script,
            strategy,
            start_at: SimTime::ZERO,
        }
    }

    /// Delay the program's start.
    pub fn starting_at(mut self, at: SimTime) -> Self {
        self.start_at = at;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_platform() {
        let c = ClusterConfig::default();
        assert_eq!(c.num_data_servers, 9);
        assert_eq!(c.stripe_size, 64 * 1024);
        assert_eq!(c.scheduler, SchedulerKind::Cfq);
        assert_eq!(c.net_bandwidth, 125_000_000);
    }

    #[test]
    fn strategy_labels_are_distinct() {
        use IoStrategy::*;
        let all = [Vanilla, Collective, PrefetchOverlap, DualParForced, DualPar];
        let labels: dualpar_sim::FxHashSet<_> = all.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), all.len());
        assert!(DualPar.is_dualpar() && DualParForced.is_dualpar());
        assert!(!Vanilla.is_dualpar());
    }
}
