//! Time attribution over a [`SpanLog`]: where did every simulated second go?
//!
//! Three views, all deterministic (BTreeMap-ordered, integer-stable math):
//!
//! - **time-in-state**: per-process totals and makespan fractions for the
//!   `proc.*` state spans (compute / blocked_io / barrier / suspended, with
//!   `proc.ghost` as an overlay inside suspended time);
//! - **stage latencies**: per-name histogram summaries (mean + p50/p90/p99)
//!   over the request-lifecycle spans (`req.*`, `server.*`, `disk.*`);
//! - **critical path**: the chain of spans that bounds makespan, extracted
//!   by walking back from the latest-closing span to the latest span that
//!   closed at or before its open, repeatedly.
//!
//! Plus a flamegraph-collapsed rendering ([`folded`]) whose lines are
//! `root;child;leaf self_time_us`, consumable by standard flamegraph
//! tooling. See `docs/PROFILING.md` for semantics and the span catalogue.

use crate::span::SpanLog;
use crate::{Hist, HistogramSummary};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One process row of the time-in-state table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcStateRow {
    /// The span key identifying the process (cluster encoding: see
    /// `docs/PROFILING.md`).
    pub key: u64,
    /// Human label for the process (e.g. `"p0/r3"`).
    pub label: String,
    /// Seconds per state span name (`proc.compute`, `proc.blocked_io`, ...).
    pub seconds: BTreeMap<String, f64>,
    /// Same, as fractions of makespan. `proc.ghost` overlays
    /// `proc.suspended`, so fractions can sum above 1.
    pub fractions: BTreeMap<String, f64>,
}

/// One hop of the critical path, latest first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalPathHop {
    /// Span name.
    pub name: String,
    /// Span key.
    pub key: u64,
    /// Open time in simulated seconds.
    pub open: f64,
    /// Close time in simulated seconds.
    pub close: f64,
}

/// Serializable attribution summary of a span log, embedded in run
/// reports and consumed by `dualpar profile` / `dualpar-audit --baseline`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanProfile {
    /// Simulated makespan the fractions are measured against.
    pub makespan: f64,
    /// Total spans recorded.
    pub spans_total: u64,
    /// Spans never closed (0 in a complete run).
    pub spans_open: u64,
    /// Per-process time-in-state rows, ordered by key.
    pub time_in_state: Vec<ProcStateRow>,
    /// Per-stage latency summaries for request-lifecycle spans, by name.
    pub stage_latency: BTreeMap<String, HistogramSummary>,
    /// The makespan-bounding chain of spans, latest first.
    pub critical_path: Vec<CriticalPathHop>,
}

fn is_proc_state(name: &str) -> bool {
    name.starts_with("proc.")
}

fn is_request_stage(name: &str) -> bool {
    name.starts_with("req.") || name.starts_with("server.") || name.starts_with("disk.")
}

impl SpanProfile {
    /// Build the profile from a span log. `makespan` is the run's simulated
    /// end time; `proc_label` renders a `proc.*` span key for humans.
    pub fn from_log(log: &SpanLog, makespan: f64, proc_label: impl Fn(u64) -> String) -> Self {
        let mut per_proc: BTreeMap<u64, BTreeMap<String, f64>> = BTreeMap::new();
        let mut stages: BTreeMap<String, Hist> = BTreeMap::new();
        for rec in log.records() {
            let name = log.name(rec.name);
            if is_proc_state(name) {
                *per_proc
                    .entry(rec.key)
                    .or_default()
                    .entry(name.to_string())
                    .or_insert(0.0) += rec.duration();
            } else if is_request_stage(name) && rec.close.is_some() {
                stages
                    .entry(name.to_string())
                    .or_insert_with(Hist::new)
                    .push(rec.duration());
            }
        }
        let time_in_state = per_proc
            .into_iter()
            .map(|(key, seconds)| {
                let fractions = seconds
                    .iter()
                    .map(|(name, secs)| {
                        let frac = if makespan > 0.0 { secs / makespan } else { 0.0 };
                        (name.clone(), frac)
                    })
                    .collect();
                ProcStateRow {
                    key,
                    label: proc_label(key),
                    seconds,
                    fractions,
                }
            })
            .collect();
        SpanProfile {
            makespan,
            spans_total: log.len() as u64,
            spans_open: log.open_count(),
            time_in_state,
            stage_latency: stages.iter().map(|(k, h)| (k.clone(), h.summary())).collect(),
            critical_path: critical_path(log),
        }
    }

    /// Render the profile as an aligned human-readable table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "span profile: makespan {:.6}s, {} spans ({} unclosed)\n",
            self.makespan, self.spans_total, self.spans_open
        ));
        // Column set: union of state names across rows, in BTreeMap order.
        let mut states: Vec<&str> = Vec::new();
        for row in &self.time_in_state {
            for name in row.seconds.keys() {
                if !states.contains(&name.as_str()) {
                    states.push(name);
                }
            }
        }
        states.sort_unstable();
        if !self.time_in_state.is_empty() {
            out.push_str("\ntime in state (seconds, fraction of makespan):\n");
            out.push_str(&format!("{:<10}", "proc"));
            for s in &states {
                out.push_str(&format!(" {:>22}", s.strip_prefix("proc.").unwrap_or(s)));
            }
            out.push('\n');
            for row in &self.time_in_state {
                out.push_str(&format!("{:<10}", row.label));
                for s in &states {
                    let secs = row.seconds.get(*s).copied().unwrap_or(0.0);
                    let frac = row.fractions.get(*s).copied().unwrap_or(0.0);
                    out.push_str(&format!(" {:>13.6} ({:>4.1}%)", secs, frac * 100.0));
                }
                out.push('\n');
            }
        }
        if !self.stage_latency.is_empty() {
            out.push_str("\nstage latency (seconds):\n");
            out.push_str(&format!(
                "{:<14} {:>8} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
                "stage", "count", "mean", "p50", "p90", "p99", "max"
            ));
            for (name, h) in &self.stage_latency {
                out.push_str(&format!(
                    "{:<14} {:>8} {:>12.6} {:>12.6} {:>12.6} {:>12.6} {:>12.6}\n",
                    name, h.count, h.mean, h.p50, h.p90, h.p99, h.max
                ));
            }
        }
        if !self.critical_path.is_empty() {
            out.push_str("\ncritical path (latest first):\n");
            for hop in &self.critical_path {
                out.push_str(&format!(
                    "  {:<14} key={:<12} [{:.6} .. {:.6}] {:>10.6}s\n",
                    hop.name,
                    hop.key,
                    hop.open,
                    hop.close,
                    (hop.close - hop.open).max(0.0)
                ));
            }
        }
        out
    }
}

/// Extract the makespan-bounding chain: start from the latest-closing span
/// (ties: larger open, then higher id) and repeatedly hop to the
/// latest-closing span whose close is at or before the current open. Stops
/// at simulated time zero or when no predecessor exists.
pub fn critical_path(log: &SpanLog) -> Vec<CriticalPathHop> {
    // Latest-finishing closed span wins; ties prefer the earliest open,
    // then the higher index for full determinism. Zero-length spans carry
    // no attributable time and would trap the walk at their instant
    // (their close equals the next bound), so they never join the path.
    let best = |bound: Option<f64>| -> Option<usize> {
        let mut best: Option<(f64, f64, usize)> = None;
        for (idx, rec) in log.records().iter().enumerate() {
            let Some(close) = rec.close else { continue };
            if close <= rec.open {
                continue;
            }
            if let Some(b) = bound {
                if close > b {
                    continue;
                }
            }
            let cand = (close, -rec.open, idx);
            if best.is_none_or(|cur| cand > cur) {
                best = Some(cand);
            }
        }
        best.map(|(_, _, idx)| idx)
    };
    let mut path = Vec::new();
    let mut cur = best(None);
    while let Some(idx) = cur {
        let rec = &log.records()[idx];
        let close = rec.close.unwrap_or(rec.open);
        path.push(CriticalPathHop {
            name: log.name(rec.name).to_string(),
            key: rec.key,
            open: rec.open,
            close,
        });
        if rec.open <= 0.0 || path.len() >= 256 {
            break;
        }
        cur = best(Some(rec.open));
        // A predecessor identical to the current hop would loop forever;
        // `close <= open` strictly decreases the bound except at zero-length
        // spans, which the id tie-break cannot distinguish — guard directly.
        if let Some(next) = cur {
            if next == idx {
                break;
            }
        }
    }
    path
}

/// Render the log as flamegraph-collapsed stacks: one line per distinct
/// name-stack, `root;child;leaf <self_time_us>`, sorted lexicographically.
/// Self time is the span's duration minus its children's, clamped at zero,
/// rounded to integer microseconds of simulated time.
pub fn folded(log: &SpanLog) -> String {
    let records = log.records();
    let mut child_sum = vec![0.0f64; records.len()];
    for rec in records {
        if rec.parent.is_valid() {
            let p = rec.parent.0 as usize;
            if p < records.len() {
                child_sum[p] += rec.duration();
            }
        }
    }
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for (idx, rec) in records.iter().enumerate() {
        let self_secs = (rec.duration() - child_sum[idx]).max(0.0);
        let us = (self_secs * 1e6).round() as u64;
        if us == 0 {
            continue;
        }
        // Build the name stack root-first by walking parent links.
        let mut frames = vec![log.name(rec.name)];
        let mut cur = rec.parent;
        let mut guard = 0;
        while let Some(p) = log.get(cur) {
            frames.push(log.name(p.name));
            cur = p.parent;
            guard += 1;
            if guard > 64 {
                break;
            }
        }
        frames.reverse();
        *stacks.entry(frames.join(";")).or_insert(0) += us;
    }
    let mut out = String::new();
    for (stack, us) in &stacks {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&us.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanId;

    fn demo_log() -> SpanLog {
        let mut log = SpanLog::new();
        // proc 0: compute [0,2], blocked [2,5], compute [5,6]
        let c0 = log.open("proc.compute", SpanId::INVALID, 0, 0.0);
        log.close(c0, 2.0);
        let b0 = log.open("proc.blocked_io", SpanId::INVALID, 0, 2.0);
        log.close(b0, 5.0);
        let c1 = log.open("proc.compute", SpanId::INVALID, 0, 5.0);
        log.close(c1, 6.0);
        // request 9: life [2,5] with disk.service child [3,4.5]
        let life = log.open("req.life", SpanId::INVALID, 9, 2.0);
        let disk = log.open("disk.service", life, 9, 3.0);
        log.close(disk, 4.5);
        log.close(life, 5.0);
        log
    }

    #[test]
    fn time_in_state_sums_per_proc() {
        let p = SpanProfile::from_log(&demo_log(), 6.0, |k| format!("proc{k}"));
        assert_eq!(p.time_in_state.len(), 1);
        let row = &p.time_in_state[0];
        assert_eq!(row.label, "proc0");
        assert!((row.seconds["proc.compute"] - 3.0).abs() < 1e-12);
        assert!((row.seconds["proc.blocked_io"] - 3.0).abs() < 1e-12);
        assert!((row.fractions["proc.compute"] - 0.5).abs() < 1e-12);
        assert_eq!(p.spans_open, 0);
        assert_eq!(p.spans_total, 5);
    }

    #[test]
    fn stage_latency_covers_request_spans_only() {
        let p = SpanProfile::from_log(&demo_log(), 6.0, |k| k.to_string());
        assert_eq!(
            p.stage_latency.keys().collect::<Vec<_>>(),
            vec!["disk.service", "req.life"]
        );
        let h = &p.stage_latency["req.life"];
        assert_eq!(h.count, 1);
        assert!((h.mean - 3.0).abs() < 1e-12);
    }

    #[test]
    fn critical_path_walks_back_to_zero() {
        let p = SpanProfile::from_log(&demo_log(), 6.0, |k| k.to_string());
        let names: Vec<&str> = p.critical_path.iter().map(|h| h.name.as_str()).collect();
        // Latest close 6.0 is the final compute span; its open (5.0) is
        // covered by req.life closing at 5.0; req.life opens at 2.0, covered
        // by the first compute span closing at 2.0, which opens at 0.
        assert_eq!(names, vec!["proc.compute", "req.life", "proc.compute"]);
        assert_eq!(p.critical_path.last().unwrap().open, 0.0);
    }

    #[test]
    fn folded_attributes_self_time() {
        let text = folded(&demo_log());
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.contains(&"proc.blocked_io 3000000"));
        assert!(lines.contains(&"req.life;disk.service 1500000"));
        // life is 3s with a 1.5s child: 1.5s self.
        assert!(lines.contains(&"req.life 1500000"));
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted, "folded output is sorted");
    }

    #[test]
    fn empty_log_profiles_cleanly() {
        let log = SpanLog::new();
        let p = SpanProfile::from_log(&log, 0.0, |k| k.to_string());
        assert_eq!(p.spans_total, 0);
        assert!(p.critical_path.is_empty());
        assert_eq!(folded(&log), "");
        assert!(!p.render_text().is_empty());
    }
}
