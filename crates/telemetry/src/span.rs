//! Span records: named intervals of simulated time with parent links.
//!
//! A span is the interval between an `open` and a `close`, both stamped in
//! *simulated* seconds, with an interned name, an optional parent span, and
//! a caller-chosen `key` (the cluster uses the slab sub-request id for
//! request-lifecycle spans and an encoded process id for state spans).
//! Together the records form a forest; the profiler in [`crate::profile`]
//! derives time-in-state tables, stage latencies, and the critical path
//! from it.
//!
//! Storage is append-only `Vec`s plus a `BTreeMap` interner, so the log is
//! deterministic: the same simulation produces an identical record
//! sequence, byte-for-byte, regardless of host threading.
//!
//! ## Sharded logs
//!
//! The sharded cluster engine gives every shard its own log, created with
//! [`SpanLog::for_shard`]. Span ids then carry the shard tag in their high
//! bits, so an id minted on one shard can cross the wire (e.g. a client
//! `req.life` span carried inside a sub-request) and be *closed* on another:
//! [`SpanLog::close`] routes an id with a foreign tag into a side list
//! instead of indexing its own records. [`SpanLog::merge`] stitches the
//! per-shard logs back into one untagged log in shard order, remapping
//! every id and parent link to plain indices and applying the foreign
//! closes — the result is indistinguishable from a log produced by a
//! single serial run of the same partitioned simulation, whatever the
//! thread count.

use std::collections::BTreeMap;

/// High bits of a [`SpanId`] holding the owning shard's tag; the low
/// [`SpanId::TAG_SHIFT`] bits index into that shard's record vector.
const TAG_MASK: u64 = !((1u64 << SpanId::TAG_SHIFT) - 1);
const INDEX_MASK: u64 = (1u64 << SpanId::TAG_SHIFT) - 1;

/// Handle to a span in a [`SpanLog`]. Index into the record vector, with
/// the owning shard's tag in the high bits (tag 0 for unsharded logs, so
/// plain logs keep ids == indices).
///
/// [`SpanId::INVALID`] is returned by the disabled facade; closing it is a
/// no-op, and passing it as a parent records "no parent". This keeps
/// instrumented call sites branch-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// Sentinel for "no span": parent-of-root, or the result of opening a
    /// span while spans are disabled.
    pub const INVALID: SpanId = SpanId(u64::MAX);

    /// Bit position where the shard tag starts. 48 index bits leave room
    /// for ~2.8e14 records per shard — unreachable under the event budget.
    pub const TAG_SHIFT: u32 = 48;

    /// Whether this id refers to a real record.
    #[inline]
    pub fn is_valid(self) -> bool {
        self != SpanId::INVALID
    }

    /// The shard tag carried in the high bits (0 for unsharded logs).
    #[inline]
    pub fn tag(self) -> u16 {
        (self.0 >> Self::TAG_SHIFT) as u16
    }

    /// The record index within the owning shard's log.
    #[inline]
    fn index(self) -> usize {
        (self.0 & INDEX_MASK) as usize
    }
}

/// Interned span-name handle; index into [`SpanLog::names`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct NameId(pub u32);

/// One open (and possibly closed) span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Parent span, or [`SpanId::INVALID`] for a root.
    pub parent: SpanId,
    /// Interned name (resolve with [`SpanLog::name`]).
    pub name: NameId,
    /// Caller-chosen correlation key (sub-request id, encoded proc id, ...).
    pub key: u64,
    /// Simulated second the span opened.
    pub open: f64,
    /// Simulated second the span closed; `None` while still open.
    pub close: Option<f64>,
}

impl SpanRecord {
    /// Duration in simulated seconds; 0 while open or for negative clocks.
    #[inline]
    pub fn duration(&self) -> f64 {
        match self.close {
            Some(c) => (c - self.open).max(0.0),
            None => 0.0,
        }
    }
}

/// Append-only log of spans with an interned name table.
#[derive(Debug, Clone, Default)]
pub struct SpanLog {
    names: Vec<&'static str>,
    name_ids: BTreeMap<&'static str, NameId>,
    records: Vec<SpanRecord>,
    open_count: u64,
    /// This log's shard tag, pre-shifted into id position (0 = unsharded).
    tag: u64,
    /// Closes of spans owned by *other* shards, applied at [`SpanLog::merge`].
    foreign_closes: Vec<(SpanId, f64)>,
}

impl SpanLog {
    /// An empty log.
    pub fn new() -> Self {
        SpanLog::default()
    }

    /// An empty log whose ids carry `tag` in their high bits, for one shard
    /// of a partitioned simulation. Tag 0 is the client/unsharded log.
    pub fn for_shard(tag: u16) -> Self {
        SpanLog {
            tag: (tag as u64) << SpanId::TAG_SHIFT,
            ..SpanLog::default()
        }
    }

    /// This log's shard tag.
    pub fn shard_tag(&self) -> u16 {
        (self.tag >> SpanId::TAG_SHIFT) as u16
    }

    /// Intern `name`, returning its stable id.
    pub fn intern(&mut self, name: &'static str) -> NameId {
        if let Some(&id) = self.name_ids.get(name) {
            return id;
        }
        let id = NameId(self.names.len() as u32);
        self.names.push(name);
        self.name_ids.insert(name, id);
        id
    }

    /// Resolve an interned name.
    pub fn name(&self, id: NameId) -> &'static str {
        self.names.get(id.0 as usize).copied().unwrap_or("?")
    }

    /// Open a span named `name` at simulated second `at` under `parent`
    /// (pass [`SpanId::INVALID`] for a root).
    pub fn open(&mut self, name: &'static str, parent: SpanId, key: u64, at: f64) -> SpanId {
        let name = self.intern(name);
        let id = SpanId(self.tag | self.records.len() as u64);
        self.records.push(SpanRecord {
            parent,
            name,
            key,
            open: at,
            close: None,
        });
        self.open_count += 1;
        id
    }

    /// Close span `id` at simulated second `at`. Closing [`SpanId::INVALID`]
    /// or an already-closed span is a no-op (the latter is a caller bug and
    /// trips a debug assertion). An id minted by another shard's log is
    /// queued as a foreign close and applied when the logs are merged.
    pub fn close(&mut self, id: SpanId, at: f64) {
        if !id.is_valid() {
            return;
        }
        if (id.0 & TAG_MASK) != self.tag {
            self.foreign_closes.push((id, at));
            return;
        }
        let Some(rec) = self.records.get_mut(id.index()) else {
            debug_assert!(false, "close of forged span id {}", id.0);
            return;
        };
        if rec.close.is_some() {
            debug_assert!(false, "double close of span id {}", id.0);
            return;
        }
        rec.close = Some(at);
        self.open_count -= 1;
    }

    /// All records, in open order.
    pub fn records(&self) -> &[SpanRecord] {
        &self.records
    }

    /// The record behind `id`, if valid and owned by this log.
    pub fn get(&self, id: SpanId) -> Option<&SpanRecord> {
        if !id.is_valid() || (id.0 & TAG_MASK) != self.tag {
            return None;
        }
        self.records.get(id.index())
    }

    /// Number of spans opened but not yet closed *by this log*. Spans
    /// awaiting a foreign close from another shard still count as open
    /// here; [`SpanLog::merge`] settles the books.
    pub fn open_count(&self) -> u64 {
        self.open_count
    }

    /// Stitch per-shard logs into one untagged log.
    ///
    /// Records are concatenated in the order given (shard order — the
    /// caller passes client first, then data servers by index, so the
    /// layout is a pure function of the simulation, never of the thread
    /// count). Every id and parent link is remapped from `(tag, index)` to
    /// a plain index in the combined vector, then each queued foreign close
    /// is applied to its remapped target. Names are re-interned in first-
    /// appearance order and `open_count` is recomputed from the merged
    /// records.
    pub fn merge(logs: Vec<SpanLog>) -> SpanLog {
        // Offset of each source log's records in the merged vector, keyed
        // by its shard tag.
        let mut offsets: BTreeMap<u16, u64> = BTreeMap::new();
        let mut total = 0u64;
        for log in &logs {
            let prev = offsets.insert(log.shard_tag(), total);
            debug_assert!(prev.is_none(), "duplicate shard tag in span merge");
            total += log.records.len() as u64;
        }
        let remap = |id: SpanId, offsets: &BTreeMap<u16, u64>| -> SpanId {
            if !id.is_valid() {
                return id;
            }
            match offsets.get(&id.tag()) {
                Some(off) => SpanId(off + (id.0 & INDEX_MASK)),
                None => {
                    debug_assert!(false, "span id {} from unknown shard", id.0);
                    SpanId::INVALID
                }
            }
        };
        let mut merged = SpanLog::new();
        merged.records.reserve(total as usize);
        let mut foreign: Vec<(SpanId, f64)> = Vec::new();
        for log in logs {
            for rec in log.records {
                let name = merged.intern(log.names[rec.name.0 as usize]);
                merged.records.push(SpanRecord {
                    parent: remap(rec.parent, &offsets),
                    name,
                    ..rec
                });
            }
            foreign.extend(log.foreign_closes);
        }
        for (id, at) in foreign {
            let idx = remap(id, &offsets);
            let Some(rec) = idx.is_valid().then(|| &mut merged.records[idx.0 as usize])
            else {
                continue;
            };
            debug_assert!(rec.close.is_none(), "foreign double close of span {}", id.0);
            rec.close = Some(at);
        }
        merged.open_count = merged.records.iter().filter(|r| r.close.is_none()).count() as u64;
        merged
    }

    /// Total spans recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log holds no spans.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_close_pairs_and_counts() {
        let mut log = SpanLog::new();
        let a = log.open("proc.compute", SpanId::INVALID, 7, 0.0);
        let b = log.open("req.life", a, 42, 1.0);
        assert_eq!(log.open_count(), 2);
        log.close(b, 2.0);
        log.close(a, 3.0);
        assert_eq!(log.open_count(), 0);
        let recs = log.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].close, Some(3.0));
        assert_eq!(recs[1].parent, a);
        assert_eq!(recs[1].key, 42);
        assert!((recs[1].duration() - 1.0).abs() < 1e-12);
        assert_eq!(log.name(recs[1].name), "req.life");
    }

    #[test]
    fn interner_is_stable() {
        let mut log = SpanLog::new();
        let a = log.intern("x");
        let b = log.intern("y");
        let a2 = log.intern("x");
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn invalid_close_is_noop() {
        let mut log = SpanLog::new();
        log.close(SpanId::INVALID, 1.0);
        assert_eq!(log.open_count(), 0);
        assert!(log.is_empty());
        assert!(log.get(SpanId::INVALID).is_none());
    }

    #[test]
    fn sharded_ids_carry_tags_and_foreign_closes_defer() {
        let mut client = SpanLog::for_shard(0);
        let mut server = SpanLog::for_shard(3);
        let life = client.open("req.life", SpanId::INVALID, 9, 0.5);
        assert_eq!(life.tag(), 0);
        let queue = server.open("server.queue", life, 9, 1.0);
        assert_eq!(queue.tag(), 3);
        // The server closes the client's span: queued, not indexed.
        server.close(life, 2.0);
        assert_eq!(client.open_count(), 1);
        assert!(client.records()[0].close.is_none());
        // Tagged ids never resolve against a foreign log.
        assert!(client.get(queue).is_none());
        assert_eq!(server.get(queue).map(|r| r.key), Some(9));
    }

    #[test]
    fn merge_remaps_parents_and_applies_foreign_closes() {
        let mut client = SpanLog::for_shard(0);
        let mut s1 = SpanLog::for_shard(1);
        let mut s2 = SpanLog::for_shard(2);
        let root = client.open("proc.compute", SpanId::INVALID, 1, 0.0);
        let life = client.open("req.life", root, 42, 1.0);
        let queue = s2.open("server.queue", life, 42, 2.0);
        s2.close(queue, 3.0);
        s2.close(life, 4.0);
        let other = s1.open("server.queue", SpanId::INVALID, 7, 2.5);
        s1.close(other, 2.75);
        client.close(root, 5.0);

        let merged = SpanLog::merge(vec![client, s1, s2]);
        assert_eq!(merged.len(), 4);
        assert_eq!(merged.open_count(), 0);
        // Layout: [root, life, s1.other, s2.queue]; parents are raw indices.
        let recs = merged.records();
        assert_eq!(recs[1].parent, SpanId(0));
        assert_eq!(recs[3].parent, SpanId(1));
        assert_eq!(merged.name(recs[3].name), "server.queue");
        // The foreign close landed on the client's record.
        assert_eq!(recs[1].close, Some(4.0));
        assert_eq!(recs[3].close, Some(3.0));
        // Merged ids are plain indices again (tag 0).
        assert_eq!(merged.get(SpanId(3)).map(|r| r.key), Some(42));
    }
}
