//! Span records: named intervals of simulated time with parent links.
//!
//! A span is the interval between an `open` and a `close`, both stamped in
//! *simulated* seconds, with an interned name, an optional parent span, and
//! a caller-chosen `key` (the cluster uses the slab sub-request id for
//! request-lifecycle spans and an encoded process id for state spans).
//! Together the records form a forest; the profiler in [`crate::profile`]
//! derives time-in-state tables, stage latencies, and the critical path
//! from it.
//!
//! Storage is append-only `Vec`s plus a `BTreeMap` interner, so the log is
//! deterministic: the same simulation produces an identical record
//! sequence, byte-for-byte, regardless of host threading.

use std::collections::BTreeMap;

/// Handle to a span in a [`SpanLog`]. Index into the record vector.
///
/// [`SpanId::INVALID`] is returned by the disabled facade; closing it is a
/// no-op, and passing it as a parent records "no parent". This keeps
/// instrumented call sites branch-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// Sentinel for "no span": parent-of-root, or the result of opening a
    /// span while spans are disabled.
    pub const INVALID: SpanId = SpanId(u64::MAX);

    /// Whether this id refers to a real record.
    #[inline]
    pub fn is_valid(self) -> bool {
        self != SpanId::INVALID
    }
}

/// Interned span-name handle; index into [`SpanLog::names`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct NameId(pub u32);

/// One open (and possibly closed) span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Parent span, or [`SpanId::INVALID`] for a root.
    pub parent: SpanId,
    /// Interned name (resolve with [`SpanLog::name`]).
    pub name: NameId,
    /// Caller-chosen correlation key (sub-request id, encoded proc id, ...).
    pub key: u64,
    /// Simulated second the span opened.
    pub open: f64,
    /// Simulated second the span closed; `None` while still open.
    pub close: Option<f64>,
}

impl SpanRecord {
    /// Duration in simulated seconds; 0 while open or for negative clocks.
    #[inline]
    pub fn duration(&self) -> f64 {
        match self.close {
            Some(c) => (c - self.open).max(0.0),
            None => 0.0,
        }
    }
}

/// Append-only log of spans with an interned name table.
#[derive(Debug, Clone, Default)]
pub struct SpanLog {
    names: Vec<&'static str>,
    name_ids: BTreeMap<&'static str, NameId>,
    records: Vec<SpanRecord>,
    open_count: u64,
}

impl SpanLog {
    /// An empty log.
    pub fn new() -> Self {
        SpanLog::default()
    }

    /// Intern `name`, returning its stable id.
    pub fn intern(&mut self, name: &'static str) -> NameId {
        if let Some(&id) = self.name_ids.get(name) {
            return id;
        }
        let id = NameId(self.names.len() as u32);
        self.names.push(name);
        self.name_ids.insert(name, id);
        id
    }

    /// Resolve an interned name.
    pub fn name(&self, id: NameId) -> &'static str {
        self.names.get(id.0 as usize).copied().unwrap_or("?")
    }

    /// Open a span named `name` at simulated second `at` under `parent`
    /// (pass [`SpanId::INVALID`] for a root).
    pub fn open(&mut self, name: &'static str, parent: SpanId, key: u64, at: f64) -> SpanId {
        let name = self.intern(name);
        let id = SpanId(self.records.len() as u64);
        self.records.push(SpanRecord {
            parent,
            name,
            key,
            open: at,
            close: None,
        });
        self.open_count += 1;
        id
    }

    /// Close span `id` at simulated second `at`. Closing [`SpanId::INVALID`]
    /// or an already-closed span is a no-op (the latter is a caller bug and
    /// trips a debug assertion).
    pub fn close(&mut self, id: SpanId, at: f64) {
        if !id.is_valid() {
            return;
        }
        let Some(rec) = self.records.get_mut(id.0 as usize) else {
            debug_assert!(false, "close of forged span id {}", id.0);
            return;
        };
        if rec.close.is_some() {
            debug_assert!(false, "double close of span id {}", id.0);
            return;
        }
        rec.close = Some(at);
        self.open_count -= 1;
    }

    /// All records, in open order.
    pub fn records(&self) -> &[SpanRecord] {
        &self.records
    }

    /// The record behind `id`, if valid.
    pub fn get(&self, id: SpanId) -> Option<&SpanRecord> {
        if !id.is_valid() {
            return None;
        }
        self.records.get(id.0 as usize)
    }

    /// Number of spans opened but not yet closed.
    pub fn open_count(&self) -> u64 {
        self.open_count
    }

    /// Total spans recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log holds no spans.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_close_pairs_and_counts() {
        let mut log = SpanLog::new();
        let a = log.open("proc.compute", SpanId::INVALID, 7, 0.0);
        let b = log.open("req.life", a, 42, 1.0);
        assert_eq!(log.open_count(), 2);
        log.close(b, 2.0);
        log.close(a, 3.0);
        assert_eq!(log.open_count(), 0);
        let recs = log.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].close, Some(3.0));
        assert_eq!(recs[1].parent, a);
        assert_eq!(recs[1].key, 42);
        assert!((recs[1].duration() - 1.0).abs() < 1e-12);
        assert_eq!(log.name(recs[1].name), "req.life");
    }

    #[test]
    fn interner_is_stable() {
        let mut log = SpanLog::new();
        let a = log.intern("x");
        let b = log.intern("y");
        let a2 = log.intern("x");
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn invalid_close_is_noop() {
        let mut log = SpanLog::new();
        log.close(SpanId::INVALID, 1.0);
        assert_eq!(log.open_count(), 0);
        assert!(log.is_empty());
        assert!(log.get(SpanId::INVALID).is_none());
    }
}
