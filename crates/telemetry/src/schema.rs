//! Canonical trace-record schema: the single source of truth for every
//! `(component, kind)` pair the simulator is allowed to emit.
//!
//! Three parties must agree on this table:
//!
//! 1. **Emitters** — every [`TraceEvent::new`](crate::TraceEvent::new) /
//!    [`Telemetry::event`](crate::Telemetry::event) call site across the
//!    workspace passes a `(component, kind)` string-literal pair;
//! 2. **The auditor** — `dualpar-audit` dispatches its invariant checks on
//!    exactly these pairs (`dualpar_audit::audited_kinds` mirrors this
//!    table, and a parity test enforces the mirror);
//! 3. **The static cross-check** — `dualpar-audit lint` extracts every
//!    literal pair from the workspace source and diffs it against this
//!    table: an emitted pair missing here means the auditor silently
//!    ignores those records; a pair listed here that no non-test code can
//!    emit means the audit rule is dead.
//!
//! Adding a new trace record therefore takes three steps, and the lint
//! fails until all three are done: add the entry here, emit it, and teach
//! the auditor what invariant it carries.

/// One registered trace-record kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KindSpec {
    /// Emitting component (`"emc"`, `"disk"`, ...).
    pub component: &'static str,
    /// Event kind within the component.
    pub kind: &'static str,
    /// Name of the audit check that consumes records of this kind.
    pub audit_check: &'static str,
}

/// Every `(component, kind)` pair the simulator may emit, with the audit
/// check that consumes it. Kept sorted by `(component, kind)`.
pub const TRACE_SCHEMA: &[KindSpec] = &[
    KindSpec { component: "cache", kind: "conservation", audit_check: "cache-conservation" },
    KindSpec { component: "crm", kind: "phase", audit_check: "crm-sequence" },
    KindSpec { component: "disk", kind: "done", audit_check: "disk-pairing" },
    KindSpec { component: "disk", kind: "start", audit_check: "disk-exclusivity" },
    KindSpec { component: "emc", kind: "config", audit_check: "emc-legality" },
    KindSpec { component: "emc", kind: "mode", audit_check: "emc-legality" },
    KindSpec { component: "emc", kind: "tick", audit_check: "emc-veto-sticky" },
    KindSpec { component: "pec", kind: "resume", audit_check: "pec-pairing" },
    KindSpec { component: "pec", kind: "suspend", audit_check: "pec-pairing" },
    KindSpec { component: "span", kind: "close", audit_check: "span-pairing" },
    KindSpec { component: "span", kind: "open", audit_check: "span-pairing" },
];

/// Is `(component, kind)` a registered pair?
pub fn is_registered(component: &str, kind: &str) -> bool {
    TRACE_SCHEMA
        .iter()
        .any(|s| s.component == component && s.kind == kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_and_duplicate_free() {
        for w in TRACE_SCHEMA.windows(2) {
            assert!(
                (w[0].component, w[0].kind) < (w[1].component, w[1].kind),
                "TRACE_SCHEMA must stay sorted and unique: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn registration_lookup_works() {
        assert!(is_registered("disk", "start"));
        assert!(!is_registered("disk", "seek"));
        assert!(!is_registered("", ""));
    }
}
