//! Zero-cost-when-disabled instrumentation for the DualPar simulator.
//!
//! The paper's evaluation is built on per-slot I/O ratios, seek-distance
//! windows, mis-prefetch ratios, and LBN traces (Figs. 1/6/7). This crate
//! provides the observability substrate those analyses need:
//!
//! - a [`Registry`] of named **counters**, **gauges**, **histograms**, and
//!   **time series** (value samples keyed by simulated seconds — one point
//!   per EMC tick in the cluster);
//! - a ring-buffered structured event **trace** ([`TraceBuffer`] of
//!   [`TraceEvent`]) with JSONL export for offline analysis;
//! - a [`Telemetry`] facade combining both behind a [`TelemetryLevel`],
//!   whose record methods are `#[inline]` early-returns when disabled, so
//!   an instrumented hot path costs one predictable branch;
//! - a serializable [`TelemetrySnapshot`] for embedding in run reports.
//!
//! All registry storage is `BTreeMap`-backed, so snapshots and exports are
//! deterministic: the same simulation produces byte-identical output.
//!
//! Metric names are dot-separated paths (`"cache.read_hits"`,
//! `"emc.improvement"`). The catalogue of names the cluster emits lives in
//! `docs/TELEMETRY.md`.

#![deny(missing_docs)]

pub mod profile;
pub mod schema;
pub mod span;

pub use profile::{folded, CriticalPathHop, ProcStateRow, SpanProfile};
pub use span::{NameId, SpanId, SpanLog, SpanRecord};

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Write};

/// How much instrumentation to record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TelemetryLevel {
    /// Record nothing; every instrumentation call is an early return.
    Off,
    /// Record counters, gauges, histograms, and time series.
    Counters,
    /// Everything in `Counters`, plus the structured event trace.
    Trace,
}

// Manual rather than derived: the vendored serde_derive stub's parser does
// not understand a `#[default]` variant attribute.
#[allow(clippy::derivable_impls)]
impl Default for TelemetryLevel {
    fn default() -> Self {
        TelemetryLevel::Off
    }
}

/// Configuration for a [`Telemetry`] instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(default)]
pub struct TelemetryConfig {
    /// Recording level.
    pub level: TelemetryLevel,
    /// Maximum trace events retained; older events are dropped (and
    /// counted) once the ring is full.
    pub trace_capacity: usize,
    /// Record spans (request lifecycle + process state intervals) into the
    /// [`SpanLog`]. Off by default: span volume scales with request count,
    /// so benches opt in explicitly (`dualpar profile` forces it on).
    pub spans: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            level: TelemetryLevel::Off,
            trace_capacity: 65_536,
            spans: false,
        }
    }
}

impl TelemetryConfig {
    /// Convenience: a config at the given level with default capacity.
    pub fn at(level: TelemetryLevel) -> Self {
        TelemetryConfig {
            level,
            ..TelemetryConfig::default()
        }
    }

    /// Convenience: enable span recording.
    pub fn with_spans(mut self) -> Self {
        self.spans = true;
        self
    }
}

/// One dynamically-typed field of a [`TraceEvent`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String (e.g. a mode or strategy label).
    Str(String),
}

/// A structured simulation event: a timestamp, a source component, an event
/// kind, and free-form fields. Serialized as one flat JSON object per line.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulated time in seconds.
    pub t: f64,
    /// Emitting component (`"emc"`, `"disk"`, `"cache"`, ...).
    pub component: &'static str,
    /// Event kind within the component (`"mode"`, `"tick"`, `"phase"`, ...).
    pub kind: &'static str,
    /// Event payload, in insertion order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl TraceEvent {
    /// Start an event at simulated second `t`.
    pub fn new(t: f64, component: &'static str, kind: &'static str) -> Self {
        TraceEvent {
            t,
            component,
            kind,
            fields: Vec::new(),
        }
    }

    /// Attach an unsigned-integer field.
    pub fn u64(mut self, key: &'static str, value: u64) -> Self {
        self.fields.push((key, FieldValue::U64(value)));
        self
    }

    /// Attach a signed-integer field.
    pub fn i64(mut self, key: &'static str, value: i64) -> Self {
        self.fields.push((key, FieldValue::I64(value)));
        self
    }

    /// Attach a floating-point field.
    pub fn f64(mut self, key: &'static str, value: f64) -> Self {
        self.fields.push((key, FieldValue::F64(value)));
        self
    }

    /// Attach a string field.
    pub fn str(mut self, key: &'static str, value: impl Into<String>) -> Self {
        self.fields.push((key, FieldValue::Str(value.into())));
        self
    }

    /// Render the event as one JSONL line (no trailing newline).
    pub fn write_jsonl(&self, out: &mut String) {
        out.push_str("{\"t\":");
        push_f64(out, self.t);
        out.push_str(",\"component\":");
        push_json_str(out, self.component);
        out.push_str(",\"kind\":");
        push_json_str(out, self.kind);
        for (key, value) in &self.fields {
            out.push(',');
            push_json_str(out, key);
            out.push(':');
            match value {
                FieldValue::U64(v) => out.push_str(&v.to_string()),
                FieldValue::I64(v) => out.push_str(&v.to_string()),
                FieldValue::F64(v) => push_f64(out, *v),
                FieldValue::Str(s) => push_json_str(out, s),
            }
        }
        out.push('}');
    }
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let s = v.to_string();
        out.push_str(&s);
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Bounded ring of [`TraceEvent`]s. When full, the oldest events are
/// discarded and counted in [`TraceBuffer::dropped`], so a long run keeps
/// the most recent window rather than aborting or growing without bound.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// An empty ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            buf: VecDeque::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Append an event, evicting the oldest if the ring is full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterate retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Write all retained events as JSON Lines.
    pub fn export_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let mut line = String::new();
        for ev in &self.buf {
            line.clear();
            ev.write_jsonl(&mut line);
            line.push('\n');
            w.write_all(line.as_bytes())?;
        }
        Ok(())
    }

    /// Stitch per-shard rings into one stream ordered by
    /// `(t, source_index, ring_position)` — a stable k-way merge, so
    /// equal-timestamp events order by the caller-fixed source order (the
    /// cluster passes client first, then data servers by index) and the
    /// result is a pure function of the simulation, never of the thread
    /// count. Each input ring must be time-monotone (every shard stamps
    /// events in its own event order, which is). The merged ring's capacity
    /// is the sum of the inputs' so the merge itself never evicts; dropped
    /// counts accumulate.
    pub fn merge(sources: Vec<TraceBuffer>) -> TraceBuffer {
        let capacity: usize = sources.iter().map(|s| s.capacity).sum();
        let dropped: u64 = sources.iter().map(|s| s.dropped).sum();
        let mut heads: Vec<VecDeque<TraceEvent>> = sources.into_iter().map(|s| s.buf).collect();
        let total: usize = heads.iter().map(VecDeque::len).sum();
        let mut buf = VecDeque::with_capacity(total);
        loop {
            let mut best: Option<(f64, usize)> = None;
            for (i, h) in heads.iter().enumerate() {
                if let Some(ev) = h.front() {
                    // Strictly-less keeps the earliest source on ties.
                    if best.is_none_or(|(t, _)| ev.t < t) {
                        best = Some((ev.t, i));
                    }
                }
            }
            let Some((_, i)) = best else { break };
            buf.push_back(heads[i].pop_front().expect("nonempty head"));
        }
        TraceBuffer {
            buf,
            capacity: capacity.max(1),
            dropped,
        }
    }
}

/// Named metric storage: counters, gauges, histograms, and time series.
///
/// All maps are `BTreeMap`s so iteration (and therefore snapshots and JSON
/// output) is deterministic regardless of insertion order.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Hist>,
    series: BTreeMap<String, Vec<(f64, f64)>>,
}

/// Welford accumulator plus fixed log-buckets for histogram-style metrics.
///
/// The bucket key keeps a positive sample's IEEE-754 exponent and top two
/// mantissa bits (`bits >> 50`), so each octave splits into four buckets
/// and a quantile's representative (the bucket's lower edge) is within 25%
/// of the true sample. Pure bit arithmetic — no libm — so quantiles are
/// deterministic across hosts. Zero, negative, and non-finite samples land
/// in bucket 0 with representative 0.0 (the cluster only observes
/// non-negative durations and sizes).
#[derive(Debug, Clone)]
struct Hist {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    buckets: BTreeMap<u64, u64>,
}

fn bucket_key(x: f64) -> u64 {
    if x > 0.0 && x.is_finite() {
        x.to_bits() >> 50
    } else {
        0
    }
}

fn bucket_rep(key: u64) -> f64 {
    if key == 0 {
        0.0
    } else {
        f64::from_bits(key << 50)
    }
}

impl Hist {
    fn new() -> Self {
        Hist {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: BTreeMap::new(),
        }
    }

    fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        *self.buckets.entry(bucket_key(x)).or_insert(0) += 1;
    }

    /// The bucket representative at or above rank `ceil(q * n)`, clamped to
    /// `[1, n]`. Deterministic: same samples, same answer, any order.
    fn quantile(&self, q: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let rank = ((q * self.n as f64).ceil() as u64).clamp(1, self.n);
        let mut cum = 0u64;
        for (&key, &count) in &self.buckets {
            cum += count;
            if cum >= rank {
                return bucket_rep(key);
            }
        }
        bucket_rep(self.buckets.keys().next_back().copied().unwrap_or(0))
    }

    /// Fold `other` into `self` (parallel Welford combine plus bucket
    /// addition). Deterministic for a fixed merge order; the cluster always
    /// merges shard registries in shard order.
    fn merge(&mut self, other: &Hist) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.m2 += other.m2 + delta * delta * (self.n as f64) * (other.n as f64) / n as f64;
        self.mean += delta * other.n as f64 / n as f64;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (&key, &count) in &other.buckets {
            *self.buckets.entry(key).or_insert(0) += count;
        }
    }

    fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.n,
            mean: if self.n == 0 { 0.0 } else { self.mean },
            min: if self.n == 0 { 0.0 } else { self.min },
            max: if self.n == 0 { 0.0 } else { self.max },
            stddev: if self.n < 2 {
                0.0
            } else {
                (self.m2 / (self.n - 1) as f64).sqrt()
            },
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Add `n` to the counter `name` (creating it at zero).
    pub fn count(&mut self, name: &str, n: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c += n,
            None => {
                self.counters.insert(name.to_string(), n);
            }
        }
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name` to `v`.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        match self.gauges.get_mut(name) {
            Some(g) => *g = v,
            None => {
                self.gauges.insert(name.to_string(), v);
            }
        }
    }

    /// Raise gauge `name` to `v` if `v` is larger (high-water mark).
    pub fn gauge_max(&mut self, name: &str, v: f64) {
        match self.gauges.get_mut(name) {
            Some(g) => *g = g.max(v),
            None => {
                self.gauges.insert(name.to_string(), v);
            }
        }
    }

    /// Current value of gauge `name` (0 if never set).
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// Record `v` into histogram `name`.
    pub fn observe(&mut self, name: &str, v: f64) {
        match self.hists.get_mut(name) {
            Some(h) => h.push(v),
            None => {
                let mut h = Hist::new();
                h.push(v);
                self.hists.insert(name.to_string(), h);
            }
        }
    }

    /// Summary of histogram `name`, if it has any samples.
    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        self.hists.get(name).map(Hist::summary)
    }

    /// Append the point `(t, v)` to time series `name`.
    pub fn sample(&mut self, name: &str, t: f64, v: f64) {
        match self.series.get_mut(name) {
            Some(s) => s.push((t, v)),
            None => {
                self.series.insert(name.to_string(), vec![(t, v)]);
            }
        }
    }

    /// The points of time series `name` (empty if never sampled).
    pub fn series(&self, name: &str) -> &[(f64, f64)] {
        self.series.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Fold another registry into this one: counters add, gauges take the
    /// maximum (every gauge the cluster emits is a high-water mark or an
    /// end-of-run constant written by exactly one shard), histograms merge
    /// their accumulators, and series points append in merge order (the
    /// cluster's series are client-only, so appends never interleave).
    pub fn merge_from(&mut self, other: Registry) {
        for (name, n) in other.counters {
            match self.counters.get_mut(&name) {
                Some(c) => *c += n,
                None => {
                    self.counters.insert(name, n);
                }
            }
        }
        for (name, v) in other.gauges {
            self.gauge_max(&name, v);
        }
        for (name, h) in other.hists {
            match self.hists.get_mut(&name) {
                Some(mine) => mine.merge(&h),
                None => {
                    self.hists.insert(name, h);
                }
            }
        }
        for (name, points) in other.series {
            match self.series.get_mut(&name) {
                Some(mine) => mine.extend(points),
                None => {
                    self.series.insert(name, points);
                }
            }
        }
    }

    /// Snapshot every metric into a serializable, deterministic form.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self
                .hists
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
            series: self.series.clone(),
            trace_events: 0,
            trace_dropped: 0,
        }
    }
}

/// Serializable summary of one histogram.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// Sample standard deviation (0 for fewer than two samples).
    pub stddev: f64,
    /// Median from the fixed log-bucket scheme (bucket lower edge, within
    /// 25% of the true sample; 0 when empty).
    pub p50: f64,
    /// 90th percentile, same scheme.
    pub p90: f64,
    /// 99th percentile, same scheme.
    pub p99: f64,
}

/// A deterministic, serializable snapshot of a [`Telemetry`] instance,
/// embedded in run reports. The raw event trace is intentionally *not*
/// included (it can be large); export it separately as JSONL. The snapshot
/// records how many events were retained and dropped.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Time-series points `(t_seconds, value)` by name.
    pub series: BTreeMap<String, Vec<(f64, f64)>>,
    /// Trace events retained in the ring at snapshot time.
    pub trace_events: u64,
    /// Trace events dropped because the ring was full.
    pub trace_dropped: u64,
}

/// The instrumentation facade: a [`Registry`] plus a [`TraceBuffer`] behind
/// a [`TelemetryLevel`]. All record methods early-return when the level
/// does not cover them, so instrumented code pays one branch when disabled.
///
/// Callers that must build a *dynamic* metric name (`format!`-style) should
/// guard on [`Telemetry::enabled`] first so the allocation is also skipped
/// when off; static-name calls can be made unconditionally.
#[derive(Debug, Clone)]
pub struct Telemetry {
    level: TelemetryLevel,
    spans_on: bool,
    registry: Registry,
    trace: TraceBuffer,
    spans: SpanLog,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::disabled()
    }
}

impl Telemetry {
    /// Build from a config.
    pub fn new(cfg: &TelemetryConfig) -> Self {
        Telemetry {
            level: cfg.level,
            spans_on: cfg.spans && cfg.level != TelemetryLevel::Off,
            registry: Registry::new(),
            trace: TraceBuffer::new(cfg.trace_capacity),
            spans: SpanLog::new(),
        }
    }

    /// Build one shard's instance of a partitioned simulation: identical to
    /// [`Telemetry::new`] except span ids carry `tag` in their high bits so
    /// they can cross shard boundaries and be re-linked at
    /// [`Telemetry::absorb_shards`]. Tag 0 is the client shard (what
    /// [`Telemetry::new`] produces).
    pub fn for_shard(cfg: &TelemetryConfig, tag: u16) -> Self {
        Telemetry {
            spans: SpanLog::for_shard(tag),
            ..Telemetry::new(cfg)
        }
    }

    /// Fold per-shard instances into this one, in the order given (the
    /// cluster passes data servers by index; `self` is the client shard).
    /// Registries merge per [`Registry::merge_from`], trace rings k-way
    /// merge by `(t, shard, ring_position)`, and span logs concatenate with
    /// ids remapped and cross-shard closes applied ([`SpanLog::merge`]).
    /// The result is byte-identical however many threads drove the shards.
    pub fn absorb_shards(&mut self, shards: Vec<Telemetry>) {
        let mut traces = vec![std::mem::take(&mut self.trace)];
        let mut logs = vec![std::mem::replace(&mut self.spans, SpanLog::new())];
        for shard in shards {
            debug_assert!(shard.level == self.level && shard.spans_on == self.spans_on);
            self.registry.merge_from(shard.registry);
            traces.push(shard.trace);
            logs.push(shard.spans);
        }
        self.trace = TraceBuffer::merge(traces);
        self.spans = SpanLog::merge(logs);
    }

    /// A no-op instance (level `Off`).
    pub fn disabled() -> Self {
        Telemetry {
            level: TelemetryLevel::Off,
            spans_on: false,
            registry: Registry::new(),
            trace: TraceBuffer::new(0),
            spans: SpanLog::new(),
        }
    }

    /// The configured level.
    pub fn level(&self) -> TelemetryLevel {
        self.level
    }

    /// Whether metrics are being recorded at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.level != TelemetryLevel::Off
    }

    /// Whether the event trace is being recorded.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.level == TelemetryLevel::Trace
    }

    /// Add `n` to counter `name`.
    #[inline]
    pub fn count(&mut self, name: &str, n: u64) {
        if self.level == TelemetryLevel::Off {
            return;
        }
        self.registry.count(name, n);
    }

    /// Record `v` into histogram `name`.
    #[inline]
    pub fn observe(&mut self, name: &str, v: f64) {
        if self.level == TelemetryLevel::Off {
            return;
        }
        self.registry.observe(name, v);
    }

    /// Append `(t, v)` to time series `name`.
    #[inline]
    pub fn sample(&mut self, name: &str, t: f64, v: f64) {
        if self.level == TelemetryLevel::Off {
            return;
        }
        self.registry.sample(name, t, v);
    }

    /// Set gauge `name` to `v`.
    #[inline]
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        if self.level == TelemetryLevel::Off {
            return;
        }
        self.registry.gauge_set(name, v);
    }

    /// Raise gauge `name` to `v` if larger.
    #[inline]
    pub fn gauge_max(&mut self, name: &str, v: f64) {
        if self.level == TelemetryLevel::Off {
            return;
        }
        self.registry.gauge_max(name, v);
    }

    /// Record a trace event at simulated second `t`. The `build` closure
    /// runs only when tracing is on, so field construction (allocation,
    /// formatting) costs nothing otherwise.
    #[inline]
    pub fn event(
        &mut self,
        t: f64,
        component: &'static str,
        kind: &'static str,
        build: impl FnOnce(TraceEvent) -> TraceEvent,
    ) {
        if self.level != TelemetryLevel::Trace {
            return;
        }
        self.trace.push(build(TraceEvent::new(t, component, kind)));
    }

    /// Whether spans are being recorded.
    #[inline]
    pub fn spans_enabled(&self) -> bool {
        self.spans_on
    }

    /// Open a span named `name` covering simulated time from `at`, under
    /// `parent` ([`SpanId::INVALID`] for a root), correlated by `key`.
    /// Returns [`SpanId::INVALID`] (a no-op handle) when spans are off.
    ///
    /// `stamp` is the *current* queue time and only stamps the mirrored
    /// trace event, keeping the trace monotone; `at` is the authoritative
    /// span boundary and may lie in the future (the engine opens spans for
    /// completions it schedules ahead of time), carried as the `at` payload
    /// field — the same convention `pec/suspend` events use.
    #[inline]
    pub fn span_open(
        &mut self,
        stamp: f64,
        at: f64,
        name: &'static str,
        parent: SpanId,
        key: u64,
    ) -> SpanId {
        if !self.spans_on {
            return SpanId::INVALID;
        }
        let id = self.spans.open(name, parent, key, at);
        if self.level == TelemetryLevel::Trace {
            let mut ev = TraceEvent::new(stamp, "span", "open")
                .u64("id", id.0)
                .str("name", name)
                .u64("key", key)
                .f64("at", at);
            if parent.is_valid() {
                ev = ev.u64("parent", parent.0);
            }
            self.trace.push(ev);
        }
        id
    }

    /// Close span `id` at simulated second `at`; `stamp` as in
    /// [`Telemetry::span_open`]. No-op for [`SpanId::INVALID`].
    #[inline]
    pub fn span_close(&mut self, stamp: f64, id: SpanId, at: f64) {
        if !self.spans_on || !id.is_valid() {
            return;
        }
        self.spans.close(id, at);
        if self.level == TelemetryLevel::Trace {
            self.trace
                .push(TraceEvent::new(stamp, "span", "close").u64("id", id.0).f64("at", at));
        }
    }

    /// Read access to the span log.
    pub fn spans(&self) -> &SpanLog {
        &self.spans
    }

    /// Read access to the metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Read access to the event trace.
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// Snapshot all metrics; `None` when the level is `Off`.
    pub fn snapshot(&self) -> Option<TelemetrySnapshot> {
        if self.level == TelemetryLevel::Off {
            return None;
        }
        let mut snap = self.registry.snapshot();
        snap.trace_events = self.trace.len() as u64;
        snap.trace_dropped = self.trace.dropped();
        Some(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut r = Registry::new();
        assert_eq!(r.counter("io.bytes_read"), 0);
        r.count("io.bytes_read", 10);
        r.count("io.bytes_read", 5);
        r.count("io.bytes_written", 1);
        assert_eq!(r.counter("io.bytes_read"), 15);
        assert_eq!(r.counter("io.bytes_written"), 1);
    }

    #[test]
    fn histogram_summary_matches_welford() {
        let mut r = Registry::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            r.observe("lat", x);
        }
        let h = r.histogram("lat").unwrap();
        assert_eq!(h.count, 8);
        assert!((h.mean - 5.0).abs() < 1e-12);
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 9.0);
        assert!((h.stddev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        // Log-bucket quantiles: rank-4 of 8 lands in the 4.0 bucket; 9.0
        // falls in the [8.0, 10.0) bucket whose representative is 8.0.
        assert_eq!(h.p50, 4.0);
        assert_eq!(h.p90, 8.0);
        assert_eq!(h.p99, 8.0);
    }

    #[test]
    fn quantiles_are_order_independent_and_bounded() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        let xs = [0.0013, 7.25, 0.5, 1e-9, 42.0, 0.5, 3.0, 0.0];
        for &x in &xs {
            a.push(x);
        }
        for &x in xs.iter().rev() {
            b.push(x);
        }
        // Welford mean/m2 accumulate in float order; only the bucket-based
        // quantiles are exactly order-independent.
        let (sa, sb) = (a.summary(), b.summary());
        assert_eq!((sa.p50, sa.p90, sa.p99), (sb.p50, sb.p90, sb.p99));
        // Representative is the bucket's lower edge: within 25% below the
        // true quantile sample.
        assert!(sa.p99 <= 42.0 && sa.p99 >= 42.0 * 0.75);
        assert_eq!(Hist::new().summary().p50, 0.0);
    }

    #[test]
    fn bucket_rep_is_lower_edge_within_25_percent() {
        for &x in &[1e-12, 0.001, 0.37, 1.0, 1.999, 5.0, 123.456, 9e9] {
            let rep = bucket_rep(bucket_key(x));
            assert!(rep <= x, "rep {rep} above sample {x}");
            assert!(rep > x * 0.75, "rep {rep} more than 25% below {x}");
        }
        assert_eq!(bucket_rep(bucket_key(0.0)), 0.0);
        assert_eq!(bucket_rep(bucket_key(-3.0)), 0.0);
        assert_eq!(bucket_rep(bucket_key(f64::NAN)), 0.0);
        assert_eq!(bucket_rep(bucket_key(f64::INFINITY)), 0.0);
    }

    #[test]
    fn empty_histogram_is_none_and_gauges_default() {
        let r = Registry::new();
        assert!(r.histogram("nope").is_none());
        assert_eq!(r.gauge("nope"), 0.0);
    }

    #[test]
    fn gauge_max_is_high_water_mark() {
        let mut r = Registry::new();
        r.gauge_max("dirty", 10.0);
        r.gauge_max("dirty", 4.0);
        r.gauge_max("dirty", 12.0);
        assert_eq!(r.gauge("dirty"), 12.0);
        r.gauge_set("dirty", 1.0);
        assert_eq!(r.gauge("dirty"), 1.0);
    }

    #[test]
    fn series_preserves_order() {
        let mut r = Registry::new();
        r.sample("emc.improvement", 1.0, 0.5);
        r.sample("emc.improvement", 2.0, 1.5);
        assert_eq!(r.series("emc.improvement"), &[(1.0, 0.5), (2.0, 1.5)]);
    }

    #[test]
    fn snapshot_is_deterministic_under_insertion_order() {
        let mut a = Registry::new();
        a.count("b", 2);
        a.count("a", 1);
        a.observe("h2", 1.0);
        a.observe("h1", 2.0);
        let mut b = Registry::new();
        b.observe("h1", 2.0);
        b.observe("h2", 1.0);
        b.count("a", 1);
        b.count("b", 2);
        let (sa, sb) = (a.snapshot(), b.snapshot());
        assert_eq!(sa.counters, sb.counters);
        assert_eq!(sa.histograms, sb.histograms);
        assert_eq!(
            sa.counters.keys().collect::<Vec<_>>(),
            vec!["a", "b"],
            "BTreeMap order"
        );
    }

    #[test]
    fn trace_ring_drops_oldest() {
        let mut t = TraceBuffer::new(3);
        for i in 0..5u64 {
            t.push(TraceEvent::new(i as f64, "x", "k").u64("i", i));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let first = t.iter().next().unwrap();
        assert_eq!(first.fields[0], ("i", FieldValue::U64(2)));
    }

    #[test]
    fn jsonl_escapes_and_shapes() {
        let ev = TraceEvent::new(1.5, "emc", "mode")
            .u64("program", 3)
            .f64("ratio", 2.0)
            .i64("delta", -4)
            .str("label", "a\"b\\c\nd");
        let mut line = String::new();
        ev.write_jsonl(&mut line);
        assert_eq!(
            line,
            "{\"t\":1.5,\"component\":\"emc\",\"kind\":\"mode\",\
             \"program\":3,\"ratio\":2.0,\"delta\":-4,\
             \"label\":\"a\\\"b\\\\c\\nd\"}"
        );
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        let mut t = Telemetry::disabled();
        t.count("x", 1);
        t.observe("y", 1.0);
        t.sample("z", 0.0, 1.0);
        t.event(0.0, "a", "b", |e| e.u64("f", 1));
        let id = t.span_open(0.0, 0.0, "proc.compute", SpanId::INVALID, 1);
        assert_eq!(id, SpanId::INVALID);
        t.span_close(1.0, id, 1.0);
        assert_eq!(t.registry().counter("x"), 0);
        assert!(t.snapshot().is_none());
        assert!(t.trace().is_empty());
        assert!(t.spans().is_empty());
    }

    #[test]
    fn spans_are_opt_in_and_mirrored_to_trace() {
        // Counters level without the spans flag: nothing recorded.
        let mut t = Telemetry::new(&TelemetryConfig::at(TelemetryLevel::Counters));
        let id = t.span_open(0.0, 0.0, "req.life", SpanId::INVALID, 9);
        assert!(!id.is_valid());
        assert!(!t.spans_enabled());

        // Counters + spans: recorded in the log, not in the trace.
        let mut t = Telemetry::new(&TelemetryConfig::at(TelemetryLevel::Counters).with_spans());
        let id = t.span_open(0.0, 0.0, "req.life", SpanId::INVALID, 9);
        assert!(id.is_valid());
        t.span_close(0.5, id, 2.0);
        assert_eq!(t.spans().len(), 1);
        assert_eq!(t.spans().open_count(), 0);
        assert!(t.trace().is_empty());

        // Trace + spans: mirrored as span/open + span/close events with the
        // authoritative time in the `at` payload.
        let mut t = Telemetry::new(&TelemetryConfig::at(TelemetryLevel::Trace).with_spans());
        let root = t.span_open(0.0, 0.0, "proc.compute", SpanId::INVALID, 3);
        let child = t.span_open(0.25, 1.0, "req.life", root, 9);
        t.span_close(0.25, child, 2.0);
        t.span_close(3.0, root, 3.0);
        assert_eq!(t.trace().len(), 4);
        let evs: Vec<&TraceEvent> = t.trace().iter().collect();
        assert_eq!((evs[0].component, evs[0].kind), ("span", "open"));
        assert_eq!((evs[2].component, evs[2].kind), ("span", "close"));
        assert!(evs[1]
            .fields
            .iter()
            .any(|(k, v)| *k == "parent" && *v == FieldValue::U64(root.0)));
        assert!(evs[1]
            .fields
            .iter()
            .any(|(k, v)| *k == "at" && *v == FieldValue::F64(1.0)));
    }

    #[test]
    fn trace_merge_orders_by_time_then_source() {
        let mut a = TraceBuffer::new(8);
        let mut b = TraceBuffer::new(8);
        a.push(TraceEvent::new(1.0, "client", "x").u64("i", 0));
        a.push(TraceEvent::new(3.0, "client", "x").u64("i", 1));
        b.push(TraceEvent::new(1.0, "server", "y").u64("i", 2));
        b.push(TraceEvent::new(2.0, "server", "y").u64("i", 3));
        let merged = TraceBuffer::merge(vec![a, b]);
        let order: Vec<&'static str> = merged.iter().map(|e| e.component).collect();
        // Tie at t=1.0 resolves to the earlier source (client).
        assert_eq!(order, vec!["client", "server", "server", "client"]);
        assert_eq!(merged.len(), 4);
        assert_eq!(merged.dropped(), 0);
    }

    #[test]
    fn registry_merge_sums_counts_maxes_gauges_merges_hists() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        a.count("ev", 3);
        b.count("ev", 4);
        b.count("only_b", 1);
        a.gauge_max("depth", 5.0);
        b.gauge_max("depth", 9.0);
        for x in [2.0, 4.0] {
            a.observe("lat", x);
        }
        for x in [4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            b.observe("lat", x);
        }
        a.sample("s", 1.0, 0.5);
        b.sample("s", 2.0, 1.5);
        a.merge_from(b);
        assert_eq!(a.counter("ev"), 7);
        assert_eq!(a.counter("only_b"), 1);
        assert_eq!(a.gauge("depth"), 9.0);
        let h = a.histogram("lat").unwrap();
        // Same eight samples as `histogram_summary_matches_welford`.
        assert_eq!(h.count, 8);
        assert!((h.mean - 5.0).abs() < 1e-12);
        assert!((h.stddev - (32.0f64 / 7.0).sqrt()).abs() < 1e-9);
        assert_eq!((h.p50, h.p90), (4.0, 8.0));
        assert_eq!(a.series("s"), &[(1.0, 0.5), (2.0, 1.5)]);
    }

    #[test]
    fn absorb_shards_relinks_cross_shard_spans() {
        let cfg = TelemetryConfig::at(TelemetryLevel::Trace).with_spans();
        let mut client = Telemetry::new(&cfg);
        let mut server = Telemetry::for_shard(&cfg, 1);
        let life = client.span_open(0.0, 0.0, "req.life", SpanId::INVALID, 7);
        let queue = server.span_open(1.0, 1.0, "server.queue", life, 7);
        server.span_close(2.0, queue, 2.0);
        server.span_close(2.0, life, 2.5);
        client.count("engine.ev", 2);
        server.count("engine.ev", 3);
        client.absorb_shards(vec![server]);
        assert_eq!(client.registry().counter("engine.ev"), 5);
        let log = client.spans();
        assert_eq!(log.len(), 2);
        assert_eq!(log.open_count(), 0);
        assert_eq!(log.records()[0].close, Some(2.5));
        assert_eq!(log.records()[1].parent, SpanId(0));
        // Trace streams interleave monotonically.
        let ts: Vec<f64> = client.trace().iter().map(|e| e.t).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn event_closure_only_runs_when_tracing() {
        let mut ran = false;
        let mut t = Telemetry::new(&TelemetryConfig::at(TelemetryLevel::Counters));
        t.event(0.0, "a", "b", |e| {
            ran = true;
            e
        });
        assert!(!ran, "closure must not run below Trace level");
        let mut t = Telemetry::new(&TelemetryConfig::at(TelemetryLevel::Trace));
        t.event(0.0, "a", "b", |e| {
            ran = true;
            e
        });
        assert!(ran);
        assert_eq!(t.trace().len(), 1);
        assert_eq!(t.snapshot().unwrap().trace_events, 1);
    }
}
