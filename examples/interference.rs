//! Opportunistic mode switching under interference — the Fig. 7 scenario.
//!
//! `mpi-io-test` streams sequentially and alone: the disks are efficient,
//! so adaptive DualPar leaves it in the computation-driven mode. Twenty
//! seconds in, `hpio` joins on the same data servers and the two request
//! streams shred each other's locality. EMC sees the seek distances blow
//! up while the per-node sorted request streams stay dense, and switches
//! both programs into the data-driven mode.
//!
//! ```sh
//! cargo run --release -p dualpar-bench --example interference
//! ```

use dualpar_cluster::prelude::*;
use dualpar_workloads::{Hpio, MpiIoTest};

fn run(adaptive: bool) {
    let strategy = if adaptive {
        IoStrategy::DualPar
    } else {
        IoStrategy::Vanilla
    };
    let stream = MpiIoTest {
        nprocs: 16,
        file_size: 2 << 30,
        barrier_every: 8,
        ..Default::default()
    };
    let hpio = Hpio {
        nprocs: 16,
        region_count: 1024,
        ..Default::default()
    };
    let report = Experiment::darwin()
        .file("stream", stream.file_size)
        .file("hpio", hpio.file_size())
        .program(strategy, move |files| stream.build(files[0]))
        .program_at(strategy, SimTime::from_secs(10), move |files| {
            let mut late = hpio.build(files[1]);
            late.name = "hpio".into();
            late
        })
        .run()
        .expect("valid experiment");
    println!("--- {} ---", strategy.label());
    // Per-second throughput timeline (MB/s), decimated for display.
    print!("throughput: ");
    for i in (0..report.throughput_timeline.num_bins()).step_by(2) {
        print!("{:.0} ", report.throughput_timeline.rate_per_sec(i) / 1e6);
    }
    println!("(MB/s, every 2 s)");
    for e in &report.mode_events {
        println!(
            "  t={:.1}s  program {} -> {:?}",
            e.at.as_secs_f64(),
            e.program_index,
            e.mode
        );
    }
    println!(
        "makespan {:.1} s, aggregate {:.1} MB/s\n",
        report.sim_end.as_secs_f64(),
        report.aggregate_throughput_mbps()
    );
}

fn main() {
    run(false);
    run(true);
}
