//! Opportunistic mode switching under interference — the Fig. 7 scenario.
//!
//! `mpi-io-test` streams sequentially and alone: the disks are efficient,
//! so adaptive DualPar leaves it in the computation-driven mode. Twenty
//! seconds in, `hpio` joins on the same data servers and the two request
//! streams shred each other's locality. EMC sees the seek distances blow
//! up while the per-node sorted request streams stay dense, and switches
//! both programs into the data-driven mode.
//!
//! ```sh
//! cargo run --release -p dualpar-bench --example interference
//! ```
//!
//! Flags:
//! - `--small` scales the workloads down (~32 MB instead of 2 GB) so a run
//!   finishes in well under a second — used by `scripts/check.sh` to
//!   produce the golden trace;
//! - `--trace <path>` records the adaptive run's full JSONL event trace to
//!   `<path>` (for `dualpar-audit trace`).

use dualpar_cluster::prelude::*;
use dualpar_workloads::{Hpio, MpiIoTest};
use std::path::PathBuf;

struct Scenario {
    small: bool,
    trace: Option<PathBuf>,
}

fn run(adaptive: bool, scenario: &Scenario) {
    let strategy = if adaptive {
        IoStrategy::DualPar
    } else {
        IoStrategy::Vanilla
    };
    let stream = MpiIoTest {
        nprocs: 16,
        file_size: if scenario.small { 32 << 20 } else { 2 << 30 },
        barrier_every: 8,
        ..Default::default()
    };
    let hpio = Hpio {
        nprocs: 16,
        region_count: if scenario.small { 64 } else { 1024 },
        ..Default::default()
    };
    let hpio_start = if scenario.small { 1 } else { 10 };
    let mut experiment = Experiment::darwin()
        .file("stream", stream.file_size)
        .file("hpio", hpio.file_size())
        .program(strategy, move |files| stream.build(files[0]))
        .program_at(strategy, SimTime::from_secs(hpio_start), move |files| {
            let mut late = hpio.build(files[1]);
            late.name = "hpio".into();
            late
        });
    // Trace only the adaptive run: it is the one exercising EMC/PEC/CRM.
    let tracing = adaptive && scenario.trace.is_some();
    if tracing {
        experiment = experiment.telemetry_config(TelemetryConfig {
            level: TelemetryLevel::Trace,
            trace_capacity: 1 << 22,
            spans: false,
        });
    }
    let mut cluster = experiment.build().expect("valid experiment");
    let report = cluster.run();
    if tracing {
        let path = scenario.trace.as_deref().expect("checked above");
        let snapshot = report.telemetry.as_ref().expect("telemetry is on");
        assert_eq!(
            snapshot.trace_dropped, 0,
            "trace ring overflowed; raise trace_capacity"
        );
        let mut file = std::io::BufWriter::new(
            std::fs::File::create(path)
                .unwrap_or_else(|e| panic!("create {}: {e}", path.display())),
        );
        cluster
            .export_trace(&mut file)
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!(
            "[trace: {} events -> {}]",
            snapshot.trace_events,
            path.display()
        );
    }
    println!("--- {} ---", strategy.label());
    // Per-second throughput timeline (MB/s), decimated for display.
    print!("throughput: ");
    for i in (0..report.throughput_timeline.num_bins()).step_by(2) {
        print!("{:.0} ", report.throughput_timeline.rate_per_sec(i) / 1e6);
    }
    println!("(MB/s, every 2 s)");
    for e in &report.mode_events {
        println!(
            "  t={:.1}s  program {} -> {:?}",
            e.at.as_secs_f64(),
            e.program_index,
            e.mode
        );
    }
    println!(
        "makespan {:.1} s, aggregate {:.1} MB/s\n",
        report.sim_end.as_secs_f64(),
        report.aggregate_throughput_mbps()
    );
}

fn main() {
    let mut scenario = Scenario {
        small: false,
        trace: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--small" => scenario.small = true,
            "--trace" => {
                let path = args.next().unwrap_or_else(|| {
                    panic!("--trace needs a path");
                });
                scenario.trace = Some(PathBuf::from(path));
            }
            other => panic!("unknown flag {other:?} (expected --small / --trace <path>)"),
        }
    }
    run(false, &scenario);
    run(true, &scenario);
}
