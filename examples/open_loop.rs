//! Open-loop traffic against a shared cluster, built from the workload DSL.
//!
//! Instead of a fixed list of start times, an [`Arrivals`] process spawns
//! program instances over simulated time — here a Poisson stream of
//! Zipf-hotspot readers arriving while a phased writer runs closed-loop.
//! Every instance is reseeded deterministically, so the whole scenario is
//! reproducible: run it twice and the reports are byte-identical.
//!
//! ```sh
//! cargo run --release -p dualpar-bench --example open_loop
//! ```
//!
//! See `docs/WORKLOADS.md` for the DSL grammar and seeding rules.

use dualpar_cluster::prelude::*;
use dualpar_workloads::{
    AccessPattern, ArrivalProcess, Arrivals, DslWorkload, OffsetDistr, OpenLoopExt, SizeDistr,
    WorkloadExpr,
};

fn main() {
    // A closed-loop tenant: four BSP phases of sequential 64 KB reads with
    // half a second of computation per phase.
    let checkpointer = DslWorkload {
        name: "checkpointer".into(),
        nprocs: 4,
        file_size: 8 << 20,
        seed: 5,
        expr: WorkloadExpr::Phased {
            phases: 4,
            compute_secs: 0.5,
            body: Box::new(WorkloadExpr::Pattern(AccessPattern {
                ops: 24,
                write_fraction: 1.0,
                ..AccessPattern::default()
            })),
        },
    };

    // An open-loop tenant class: instances arrive as a Poisson process at
    // 0.5/s over a 6 s horizon, each hammering a Zipf-hotspot head.
    let reader = DslWorkload {
        name: "hot-reader".into(),
        nprocs: 4,
        file_size: 8 << 20,
        seed: 33,
        expr: WorkloadExpr::Pattern(AccessPattern {
            ops: 32,
            size: SizeDistr::Uniform {
                min: 4096,
                max: 32768,
            },
            offsets: OffsetDistr::ZipfHotspot { theta: 0.99 },
            compute_secs_per_op: 0.03,
            ..AccessPattern::default()
        }),
    };
    let poisson = Arrivals {
        process: ArrivalProcess::Poisson { rate_per_sec: 0.5 },
        horizon_secs: 6.0,
        seed: 101,
        ..Arrivals::default()
    };

    let report = Experiment::darwin()
        .workload_expr(IoStrategy::DualPar, &checkpointer)
        .arrivals(IoStrategy::DualPar, &reader, &poisson)
        .run()
        .expect("valid experiment");

    println!("{:<16} {:>9} {:>9} {:>8}", "program", "start s", "MB/s", "time s");
    for p in &report.programs {
        println!(
            "{:<16} {:>9.2} {:>9.1} {:>8.2}",
            p.name,
            p.start.as_secs_f64(),
            p.throughput_mbps(),
            p.elapsed().as_secs_f64(),
        );
    }
    println!(
        "\n{} programs ({} open-loop arrivals); every run of this example is",
        report.programs.len(),
        report.programs.len() - 1
    );
    println!("byte-identical: arrival times and per-instance seeds are derived");
    println!("deterministically from the two seeds above.");
}
