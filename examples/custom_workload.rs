//! Building a workload by hand — the public API below the benchmark suite.
//!
//! A 2-D field solver: each rank owns a block of a square array (via an
//! `MPI_Type_create_subarray`-style datatype), alternates computation with
//! checkpoint writes, and finally reads a neighbour's block (a halo
//! exchange through the file — deliberately awkward I/O). Runs the same
//! program under vanilla MPI-IO and adaptive DualPar.
//!
//! ```sh
//! cargo run --release -p dualpar-bench --example custom_workload
//! ```

use dualpar_cluster::prelude::*;
use dualpar_mpiio::Datatype;

/// Grid side in elements; 8-byte elements; 4×4 rank blocks.
const GRID: u64 = 2048;
const ELEM: u64 = 8;
const BLOCKS: u64 = 4; // ranks per side ⇒ 16 ranks
const STEPS: u64 = 8;

fn rank_block(rank: u64) -> Datatype {
    let sub = GRID / BLOCKS;
    Datatype::Subarray2 {
        rows: GRID,
        cols: GRID,
        elem_bytes: ELEM,
        row_off: (rank / BLOCKS) * sub,
        col_off: (rank % BLOCKS) * sub,
        sub_rows: sub,
        sub_cols: sub,
    }
}

fn build(file: FileId) -> ProgramScript {
    let nprocs = (BLOCKS * BLOCKS) as usize;
    let ranks = (0..nprocs as u64)
        .map(|rank| {
            let mut ops = Vec::new();
            for step in 0..STEPS {
                ops.push(Op::Compute(SimDuration::from_millis(10)));
                // Checkpoint this rank's block.
                ops.push(Op::Io(IoCall::from_datatype(
                    IoKind::Write,
                    file,
                    &rank_block(rank),
                    0,
                )));
                ops.push(Op::Barrier(step));
            }
            // Halo through the file: read the neighbour's block back.
            let neighbour = (rank + 1) % (BLOCKS * BLOCKS);
            ops.push(Op::Io(IoCall::from_datatype(
                IoKind::Read,
                file,
                &rank_block(neighbour),
                0,
            )));
            ProcessScript::new(ops)
        })
        .collect();
    ProgramScript {
        name: "field-solver".into(),
        ranks,
    }
}

fn main() {
    let bytes = GRID * GRID * ELEM;
    println!(
        "2-D field solver: {GRID}x{GRID} grid ({:.0} MB), {} ranks, {STEPS} checkpoints\n",
        bytes as f64 / 1e6,
        BLOCKS * BLOCKS
    );
    for strategy in [IoStrategy::Vanilla, IoStrategy::DualPar] {
        let report = Experiment::darwin()
            .file("field.dat", bytes)
            .program(strategy, |files| build(files[0]))
            .run()
            .expect("valid experiment");
        let p = &report.programs[0];
        println!(
            "{:<10} {:>7.2} s  wrote {:>6.1} MB  read {:>5.1} MB  {} phases  {} mode switches",
            strategy.label(),
            p.elapsed().as_secs_f64(),
            p.bytes_written as f64 / 1e6,
            p.bytes_read as f64 / 1e6,
            p.phases,
            report.mode_events.len(),
        );
    }
    println!("\nEach rank's block is {} noncontiguous row-strips of {} bytes —", GRID / BLOCKS, (GRID / BLOCKS) * ELEM);
    println!("exactly the access shape the data-driven mode was built to repair.");
}
