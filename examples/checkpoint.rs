//! Checkpoint writing — the BTIO scenario from the paper's evaluation.
//!
//! A solver writes its solution arrays every few timesteps. Each process
//! owns an interleaved slice of every array row, so its writes are many
//! tiny noncontiguous segments — the worst case for a disk. Compare the
//! three ways of shipping that checkpoint to storage.
//!
//! ```sh
//! cargo run --release -p dualpar-bench --example checkpoint
//! ```

use dualpar_cluster::prelude::*;
use dualpar_workloads::Btio;

fn main() {
    let strategies = [
        IoStrategy::Vanilla,
        IoStrategy::Collective,
        IoStrategy::DualParForced,
    ];
    println!("BTIO-style checkpoint: 64 processes, 16-byte cells, 24 MB per run\n");
    let mut base = None;
    for strategy in strategies {
        let workload = Btio {
            nprocs: 64,
            dataset: 24 << 20,
            collective: strategy == IoStrategy::Collective,
            ..Default::default()
        };
        let report = Experiment::darwin()
            .file("checkpoint.bt", workload.file_size())
            .program(strategy, move |files| workload.build(files[0]))
            .run()
            .expect("valid experiment");
        let p = &report.programs[0];
        let thr = p.throughput_mbps();
        let speedup = base.map(|b: f64| thr / b).unwrap_or(1.0);
        base.get_or_insert(thr);
        println!(
            "{:<16} {:>9.2} MB/s   checkpoint time {:>8.1} s   {:>5.0}x vs vanilla",
            strategy.label(),
            thr,
            p.elapsed().as_secs_f64(),
            speedup,
        );
    }
    println!("\nCollective I/O fixes each call in isolation; DualPar accumulates a");
    println!("cache quota's worth of calls per process before touching the disks,");
    println!("so its write-back batches are bigger and need no per-call shuffle.");
}
