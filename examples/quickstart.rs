//! Quickstart: build a simulated cluster, run one MPI-IO workload under
//! vanilla MPI-IO and under DualPar, and compare.
//!
//! ```sh
//! cargo run --release -p dualpar-bench --example quickstart
//! ```

use dualpar_cluster::prelude::*;
use dualpar_workloads::MpiIoTest;

fn main() {
    for strategy in [IoStrategy::Vanilla, IoStrategy::DualParForced] {
        // The mpi-io-test benchmark: 64 processes cooperatively reading a
        // 256 MB file in interleaved 16 KB segments, on the paper's Darwin
        // platform (nine PVFS2-style data servers, CFQ, 64 KB stripes).
        let workload = MpiIoTest {
            nprocs: 64,
            file_size: 256 << 20,
            ..Default::default()
        };
        let report = Experiment::darwin()
            .telemetry(TelemetryLevel::Counters)
            .file("dataset.bin", workload.file_size)
            .program(strategy, move |files| workload.build(files[0]))
            .run()
            .expect("valid experiment");
        let p = &report.programs[0];
        let seek = report
            .telemetry
            .as_ref()
            .and_then(|t| t.counters.get("disk.seek_sectors_total").copied())
            .unwrap_or(0);
        println!(
            "{:<16} {:>8.1} MB/s   elapsed {:>6.2} s   {} data-driven phases   {:>12} sectors seeked",
            strategy.label(),
            p.throughput_mbps(),
            p.elapsed().as_secs_f64(),
            p.phases,
            seek,
        );
    }
    println!("\nDualPar suspends the processes, pre-executes them to learn the");
    println!("upcoming requests, and issues one large sorted batch per phase —");
    println!("turning an interleaved 16 KB request stream into sequential sweeps.");
}
