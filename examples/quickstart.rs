//! Quickstart: build a simulated cluster, run one MPI-IO workload under
//! vanilla MPI-IO and under DualPar, and compare.
//!
//! ```sh
//! cargo run --release -p dualpar-bench --example quickstart
//! ```

use dualpar_cluster::{Cluster, ClusterConfig, IoStrategy, ProgramSpec};
use dualpar_workloads::MpiIoTest;

fn main() {
    // The paper's platform: nine PVFS2-style data servers with 7200-RPM
    // disks behind CFQ, 64 KB striping, GigE. All defaults.
    let config = ClusterConfig::default();

    for strategy in [IoStrategy::Vanilla, IoStrategy::DualParForced] {
        // A fresh cluster per run so disk layout and caches are identical.
        let mut cluster = Cluster::new(config.clone());

        // The mpi-io-test benchmark: 64 processes cooperatively reading a
        // 256 MB file in interleaved 16 KB segments.
        let workload = MpiIoTest {
            nprocs: 64,
            file_size: 256 << 20,
            ..Default::default()
        };
        let file = cluster.create_file("dataset.bin", workload.file_size);
        cluster.add_program(ProgramSpec::new(workload.build(file), strategy));

        let report = cluster.run();
        let p = &report.programs[0];
        println!(
            "{:<16} {:>8.1} MB/s   elapsed {:>6.2} s   {} data-driven phases   ({} events)",
            strategy.label(),
            p.throughput_mbps(),
            p.elapsed().as_secs_f64(),
            p.phases,
            report.events_processed,
        );
    }
    println!("\nDualPar suspends the processes, pre-executes them to learn the");
    println!("upcoming requests, and issues one large sorted batch per phase —");
    println!("turning an interleaved 16 KB request stream into sequential sweeps.");
}
