//! Sequence-similarity search — the S3asim scenario: several analysis
//! jobs share the data servers, each issuing mixed-size reads over a
//! database file and writing result records.
//!
//! ```sh
//! cargo run --release -p dualpar-bench --example seqsearch
//! ```

use dualpar_cluster::prelude::*;
use dualpar_workloads::S3asim;

fn main() {
    println!("Three concurrent S3asim instances, 16 queries each\n");
    for strategy in [
        IoStrategy::Vanilla,
        IoStrategy::Collective,
        IoStrategy::DualParForced,
    ] {
        let mut exp = Experiment::darwin();
        for i in 0..3u64 {
            let workload = S3asim {
                nprocs: 32,
                queries: 16,
                db_size: 256 << 20,
                result_size: 64 << 20,
                collective: strategy == IoStrategy::Collective,
                seed: 7 + i,
                ..Default::default()
            };
            exp = exp
                .file(format!("db{i}"), workload.db_size)
                .file(format!("results{i}"), workload.result_size)
                .program(strategy, move |files| {
                    // Files land in declaration order: (db, results) pairs.
                    let (db, res) = (files[2 * i as usize], files[2 * i as usize + 1]);
                    let mut script = workload.build(db, res);
                    script.name = format!("s3asim{i}");
                    script
                });
        }
        let report = exp.run().expect("valid experiment");
        let total_io: f64 = report
            .programs
            .iter()
            .map(|p| p.mean_io_time_secs())
            .sum();
        println!(
            "{:<16} total I/O time {:>7.1} s   makespan {:>6.1} s   aggregate {:>6.1} MB/s",
            strategy.label(),
            total_io,
            report.sim_end.as_secs_f64(),
            report.aggregate_throughput_mbps(),
        );
    }
    println!("\nS3asim's requests are relatively large, so the win is modest —");
    println!("matching the paper's observation (≤25%, 17% on average).");
}
