#!/usr/bin/env bash
# Repo gate: build, test, lint. Run before every commit.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo clippy --offline --all-targets -- -D warnings
echo "check.sh: all green"
