#!/usr/bin/env bash
# Repo gate: build, test, lint, audit. Run before every commit.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
# The tests crate turns the strict-invariants feature on for the whole
# graph, so `cargo test` compiles every inline invariant check.
cargo test -q --offline
cargo clippy --offline --all-targets -- -D warnings

# Source lint: token-aware pass over crates/*/src — unwrap/panic/locks,
# determinism hazards (std hashing, wall-clock, env reads, unguarded
# time/LBN arithmetic), narrowing casts in the disk/cache hot paths, and
# the trace-schema emitter/auditor cross-check (see docs/LINT.md). Gate
# on the JSON report: zero deny findings AND zero stale allow entries.
cargo build --release --offline -p dualpar-audit
lint_json="$(./target/release/dualpar-audit lint --root . \
    --allow scripts/lint-allow.txt --format json --jobs "$(nproc)")" || {
    echo "$lint_json"
    echo "check.sh: lint gate failed" >&2
    exit 1
}
echo "$lint_json" | grep -q '"deny":0,' || {
    echo "$lint_json"
    echo "check.sh: lint reported deny findings" >&2
    exit 1
}
echo "$lint_json" | grep -q '"unused_suppressions":0,' || {
    echo "$lint_json"
    echo "check.sh: stale entries in scripts/lint-allow.txt" >&2
    exit 1
}

# Trace audit: replay the paper's interference scenario (scaled down),
# record the adaptive run's event trace, and check every simulation
# invariant over it — monotone time, disk exclusivity, PEC pairing, EMC
# transition legality, cache byte conservation.
golden="$(mktemp /tmp/dualpar-golden.XXXXXX.jsonl)"
trap 'rm -f "$golden"' EXIT
cargo run --release --offline -q -p dualpar-bench --example interference -- \
    --small --trace "$golden"
./target/release/dualpar-audit trace "$golden"

# Profile smoke: run the profiler on the quickstart fixture, audit the
# span stream (pairing/nesting/stage order), and baseline-diff the report
# against the committed golden profile — any simulated-time drift (new
# costs, reordered service, changed makespan) fails the gate. Regenerate
# the golden on intentional changes (--trace matters: it sets the trace
# counters embedded in the report):
#   cargo run --release -p dualpar-bench --bin dualpar -- profile quickstart \
#       --json --trace /dev/null > bench_results/PROFILE_quickstart_golden.json
prof="$(mktemp -d /tmp/dualpar-prof.XXXXXX)"
trap 'rm -f "$golden"; rm -rf "$prof"' EXIT
cargo run --release --offline -q -p dualpar-bench --bin dualpar -- \
    profile quickstart --json --trace "$prof/spans.jsonl" > "$prof/profile.json"
./target/release/dualpar-audit trace "$prof/spans.jsonl"
./target/release/dualpar-audit trace --baseline \
    bench_results/PROFILE_quickstart_golden.json "$prof/profile.json" \
    --max-regress-pct 0
cmp bench_results/PROFILE_quickstart_golden.json "$prof/profile.json"

# DSL smoke: build the committed 3-tenant mixed scenario (workload DSL +
# Poisson arrivals, see docs/WORKLOADS.md) from JSON, run it with a trace,
# audit every simulation invariant over the trace, and baseline-diff +
# byte-compare the report against the committed golden. Regenerate the
# golden on intentional changes:
#   cargo run --release -p dualpar-bench --bin dualpar -- \
#       examples/specs/multitenant.json --trace /dev/null \
#       > bench_results/GOLDEN_dsl_multitenant.json
dsl="$(mktemp -d /tmp/dualpar-dsl.XXXXXX)"
trap 'rm -f "$golden"; rm -rf "$prof" "$dsl"' EXIT
cargo run --release --offline -q -p dualpar-bench --bin dualpar -- \
    examples/specs/multitenant.json --trace "$dsl/trace.jsonl" > "$dsl/report.json"
./target/release/dualpar-audit trace "$dsl/trace.jsonl"
./target/release/dualpar-audit trace --baseline \
    bench_results/GOLDEN_dsl_multitenant.json "$dsl/report.json" \
    --max-regress-pct 0
cmp bench_results/GOLDEN_dsl_multitenant.json "$dsl/report.json"
# The same scenario through the parallel suite runner: reports must be
# byte-identical between --jobs 4 and the serial twin.
cargo run --release --offline -q -p dualpar-bench --bin dualpar -- \
    suite --spec examples/specs/multitenant.json --jobs 4 --verify-serial \
    --out "$dsl/suite.json"

# Shard-determinism gate: the sharded engine must not move a single byte
# of any report or trace (see docs/PERF.md). Re-run the multi-tenant
# scenario with server event windows on four shard workers and
# byte-compare report and trace against the --shards 1 artifacts above.
cargo run --release --offline -q -p dualpar-bench --bin dualpar -- \
    examples/specs/multitenant.json --shards 4 --trace "$dsl/trace4.jsonl" \
    > "$dsl/report4.json"
cmp "$dsl/report.json" "$dsl/report4.json"
cmp "$dsl/trace.jsonl" "$dsl/trace4.jsonl"
# Schema-migration smoke: the committed v0-era specs (no version field,
# closed-enum-era workload tags) must still load and run.
cargo run --release --offline -q -p dualpar-bench --bin dualpar -- \
    examples/specs/quickstart_v0.json > /dev/null
cargo run --release --offline -q -p dualpar-bench --bin dualpar -- \
    examples/specs/interference_v0.json > /dev/null

# Criterion smoke: run each hot-path benchmark body once (`--test` mode of
# the vendored criterion stub) so a bench-only compile break or panic fails
# the gate without paying for timed samples.
cargo bench --offline -p dualpar-bench --bench hot_path -- --test

# Suite smoke: the parallel runner over the small figure-set suite, with
# the serial-twin determinism check (exits non-zero on any byte-level
# report divergence between --jobs N and serial), a per-run wall-clock
# timeout so a hung simulation fails its entry instead of wedging the
# gate (one retry before an entry is declared failed), and engine-speed
# numbers timed into the log (see docs/BENCH.md). The pooled pass runs at
# --shards 4 while the --verify-serial twins run fully inline, so this is
# also the whole-suite shard-determinism gate.
suite_out="$(mktemp -d /tmp/dualpar-suite.XXXXXX)"
trap 'rm -f "$golden"; rm -rf "$prof" "$dsl" "$suite_out"' EXIT
time cargo run --release --offline -q -p dualpar-bench --bin dualpar -- \
    suite --jobs "$(nproc)" --shards 4 --scale small --verify-serial \
    --timeout-secs 300 --retry 1 --out "$suite_out/BENCH_suite.json"

# Suite gate: diff the artifact the smoke run just produced against the
# committed BENCH_suite.json. Per-run sim_events and report fingerprints
# must match exactly (they are simulation-determined, machine-independent);
# the events-per-second delta is reported for the log but never gated —
# wall clocks are this machine's business. Regenerate the committed
# artifact on intentional simulation changes:
#   cargo run --release -p dualpar-bench --bin dualpar -- \
#       suite --jobs 4 --out bench_results/BENCH_suite.json
./target/release/dualpar-audit trace --baseline \
    bench_results/BENCH_suite.json "$suite_out/BENCH_suite.json"

echo "check.sh: all green"
