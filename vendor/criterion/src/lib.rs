//! Offline stub of `criterion`.
//!
//! Provides the subset of the criterion API the workspace's benches use,
//! backed by straightforward `std::time::Instant` timing: warm up, run a
//! fixed number of timed samples, and print the best sample as ns/iter
//! (plus derived throughput when configured). No statistics, plotting, or
//! baseline storage — just honest wall-clock numbers, so `cargo bench`
//! works offline.
//!
//! Passing `--test` on the bench binary's command line (real criterion's
//! smoke-test flag, e.g. `cargo bench -- --test`) runs every benchmark
//! body exactly once without timing and prints `ok` per benchmark — CI can
//! prove the benches still compile and run without paying for samples.

use std::time::{Duration, Instant};

/// How batched inputs are grouped (accepted, but the stub always runs
/// setup per batch).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small input: many iterations per setup.
    SmallInput,
    /// Large input: one iteration per setup.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            smoke: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let smoke = self.smoke;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            samples: 20,
            throughput: None,
            smoke,
        }
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: u32,
    throughput: Option<Throughput>,
    smoke: bool,
}

impl BenchmarkGroup<'_> {
    /// Set the units-per-iteration used to report a rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2) as u32;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if self.smoke {
            let mut b = Bencher { best: Duration::MAX, samples: 0, smoke: true };
            f(&mut b);
            println!("{}/{id}: ok (smoke)", self.name);
            return self;
        }
        let mut b = Bencher { best: Duration::MAX, samples: self.samples, smoke: false };
        f(&mut b);
        let ns = b.best.as_nanos();
        match self.throughput {
            Some(Throughput::Elements(n)) if ns > 0 => {
                let rate = n as f64 / b.best.as_secs_f64();
                println!("{}/{id}: {ns} ns/iter ({rate:.0} elem/s)", self.name);
            }
            Some(Throughput::Bytes(n)) if ns > 0 => {
                let rate = n as f64 / b.best.as_secs_f64() / (1 << 20) as f64;
                println!("{}/{id}: {ns} ns/iter ({rate:.1} MiB/s)", self.name);
            }
            _ => println!("{}/{id}: {ns} ns/iter", self.name),
        }
        self
    }

    /// Finish the group (no-op in the stub).
    pub fn finish(&mut self) {}
}

/// Times one benchmark body.
pub struct Bencher {
    best: Duration,
    samples: u32,
    smoke: bool,
}

impl Bencher {
    /// Time `f`, keeping the best sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke {
            std::hint::black_box(f());
            return;
        }
        // Warm-up.
        for _ in 0..2 {
            std::hint::black_box(f());
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            let dt = start.elapsed();
            if dt < self.best {
                self.best = dt;
            }
        }
    }

    /// Time `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        if self.smoke {
            return;
        }
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            let dt = start.elapsed();
            if dt < self.best {
                self.best = dt;
            }
        }
    }
}

/// Declare a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
