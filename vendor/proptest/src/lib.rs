//! Offline stub of `proptest`.
//!
//! The build container cannot reach crates.io, so the workspace patches
//! `proptest` with this minimal — but functional — property-testing
//! implementation. It really generates random inputs and runs each test
//! body for `ProptestConfig::cases` iterations; it just does not shrink
//! failures (a failing case panics with the ordinary assertion message).
//!
//! Supported surface (exactly what the workspace's property tests use):
//! `proptest!` with an optional `#![proptest_config(...)]` header,
//! strategies from integer/float ranges and `"[a-z]{m,n}"`-style string
//! patterns, `any::<T>()`, `Just`, tuple strategies, `prop_map`,
//! `prop_flat_map`, `boxed`, `prop_oneof!`, `proptest::collection::vec`,
//! and `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Generation is deterministic: each test gets an RNG seeded from the hash
//! of its module path and name, so failures reproduce across runs.

use std::ops::{Range, RangeInclusive};

/// Deterministic RNG used by strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the stream for one named test, deterministically.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the fully qualified test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Unbiased value in `[0, span)`.
    #[inline]
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        if span.is_power_of_two() {
            return self.next_u64() & (span - 1);
        }
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runner configuration. Only `cases` is honoured by the stub.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` iterations.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps simulator-heavy suites
        // fast while still exercising a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` returns.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

trait DynStrategy<T> {
    fn gen_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.gen_dyn(rng)
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

/// Uniform choice between boxed alternative strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the alternatives.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].gen_value(rng)
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------------
// String pattern strategy (tiny regex subset: `[a-z...]{m,n}`)
// ---------------------------------------------------------------------------

impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_simple_pattern(self)
            .unwrap_or_else(|| panic!("proptest stub: unsupported string pattern {self:?}"));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

/// Parse patterns of the form `[a-z0-9_]{m,n}` (or `{m}`): a single char
/// class with an explicit repetition. Returns (alphabet, min, max).
fn parse_simple_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i] as u32, class[i + 2] as u32);
            if a > b {
                return None;
            }
            for c in a..=b {
                chars.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    let rep = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match rep.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = rep.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    Some((chars, lo, hi))
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Number-of-elements specification for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// The proptest entry macro: declares `#[test]` functions whose arguments
/// are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __strat = ( $($strat,)+ );
                let mut __rng = $crate::TestRng::for_test(
                    ::core::concat!(::core::module_path!(), "::", ::core::stringify!($name)),
                );
                for __case in 0..__cfg.cases {
                    let ( $($pat,)+ ) = $crate::Strategy::gen_value(&__strat, &mut __rng);
                    let _ = __case;
                    $body
                }
            }
        )*
    };
}

/// Uniform choice between several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![ $( $crate::Strategy::boxed($arm) ),+ ])
    };
}

/// Assertion inside a property body (panics like `assert!` in the stub).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { ::std::assert!($($t)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { ::std::assert_eq!($($t)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { ::std::assert_ne!($($t)*) };
}

/// Assumption filter: in the stub, a failed assumption just skips the case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Everything a property-test module normally imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_vecs_in_bounds() {
        let mut rng = TestRng::for_test("stub::ranges");
        let s = (1u64..10, collection::vec(0usize..5, 2..6));
        for _ in 0..500 {
            let (x, v) = s.gen_value(&mut rng);
            assert!((1..10).contains(&x));
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 5));
        }
    }

    #[test]
    fn string_pattern() {
        let mut rng = TestRng::for_test("stub::pattern");
        let s = "[a-z]{1,12}";
        for _ in 0..200 {
            let v = Strategy::gen_value(&s, &mut rng);
            assert!((1..=12).contains(&v.len()));
            assert!(v.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn oneof_covers_arms() {
        let mut rng = TestRng::for_test("stub::oneof");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.gen_value(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
