//! Offline stub of `serde`.
//!
//! The build container cannot reach crates.io, so the workspace patches
//! `serde` with this minimal value-model implementation (see
//! `[patch.crates-io]` in the workspace `Cargo.toml`). It supports the
//! subset the workspace uses:
//!
//! - `#[derive(Serialize, Deserialize)]` on plain structs, tuple structs,
//!   and enums (unit / newtype / tuple / struct variants, externally
//!   tagged), via the sibling `serde_derive` stub;
//! - container-level `#[serde(default)]` and `#[serde(rename_all =
//!   "snake_case")]`, field-level `#[serde(default)]`;
//! - impls for primitives, `String`, `Option`, `Box`, `Vec`, tuples, and
//!   string-keyed maps.
//!
//! Instead of real serde's visitor architecture, everything funnels through
//! a concrete [`Value`] tree, which `serde_json` (also stubbed) renders and
//! parses. Workspace code must only rely on the intersection API (derive +
//! trait bounds + `serde_json::{to_string, to_string_pretty, from_str}`),
//! which behaves identically under real serde.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data value — the stub's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (only produced for negative numbers).
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered map (insertion order preserved; keys are strings).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the map entries if this is a `Map`.
    pub fn as_map(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow the sequence if this is a `Seq`.
    pub fn as_seq(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow the string if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Look up `key` in derive-generated map output (linear scan; maps here are
/// small config/report objects).
pub fn find_field<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Build an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`].
pub trait Serialize {
    /// Convert `self` into the stub data model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstruct `Self`, with lenient numeric coercions (as JSON needs).
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// `Value` round-trips through itself, so callers can work with
// schema-less JSON (`serde_json::from_str::<Value>`).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
            self.3.to_value(),
        ])
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output; HashMap iteration order is random.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

fn want(v: &Value, what: &str) -> Error {
    Error(format!("expected {what}, found {v:?}"))
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x: u64 = match *v {
                    Value::U64(x) => x,
                    Value::I64(x) if x >= 0 => x as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => f as u64,
                    ref other => return Err(want(other, "unsigned integer")),
                };
                <$t>::try_from(x).map_err(|_| Error(format!("integer {x} out of range")))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x: i64 = match *v {
                    Value::I64(x) => x,
                    Value::U64(x) if x <= i64::MAX as u64 => x as i64,
                    Value::F64(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => f as i64,
                    ref other => return Err(want(other, "integer")),
                };
                <$t>::try_from(x).map_err(|_| Error(format!("integer {x} out of range")))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::F64(f) => Ok(f),
            Value::U64(x) => Ok(x as f64),
            Value::I64(x) => Ok(x as f64),
            ref other => Err(want(other, "number")),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(want(other, "bool")),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(want(other, "string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(want(other, "sequence")),
        }
    }
}

fn tuple_seq<'a>(v: &'a Value, n: usize) -> Result<&'a [Value], Error> {
    match v {
        Value::Seq(items) if items.len() == n => Ok(items),
        other => Err(want(other, "tuple sequence")),
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = tuple_seq(v, 2)?;
        Ok((A::from_value(&s[0])?, B::from_value(&s[1])?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = tuple_seq(v, 3)?;
        Ok((A::from_value(&s[0])?, B::from_value(&s[1])?, C::from_value(&s[2])?))
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(want(other, "map")),
        }
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(want(other, "map")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_coercions() {
        assert_eq!(u64::from_value(&Value::U64(3)).unwrap(), 3);
        assert_eq!(u64::from_value(&Value::F64(3.0)).unwrap(), 3);
        assert!(u64::from_value(&Value::F64(3.5)).is_err());
        assert_eq!(f64::from_value(&Value::U64(3)).unwrap(), 3.0);
        assert_eq!(i64::from_value(&Value::I64(-2)).unwrap(), -2);
        assert!(u32::from_value(&Value::I64(-2)).is_err());
    }

    #[test]
    fn option_null_roundtrip() {
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u64>::from_value(&Value::U64(1)).unwrap(), Some(1));
        assert_eq!(None::<u64>.to_value(), Value::Null);
    }
}
