//! Offline stub of `serde_derive`.
//!
//! Generates impls of the stub `serde::Serialize` / `serde::Deserialize`
//! traits (a concrete `Value`-tree model, not real serde's visitors). The
//! input item is parsed directly from the proc-macro token stream — no
//! `syn`/`quote`, since the build container cannot fetch them.
//!
//! Supported shapes: structs with named fields, tuple structs, unit
//! structs, and enums with unit / tuple / struct variants (externally
//! tagged, matching real serde's JSON layout). Supported attributes:
//! container `#[serde(default)]` and `#[serde(rename_all =
//! "snake_case")]`, field `#[serde(default)]`. Generics are not supported;
//! anything unsupported panics at compile time so it cannot silently
//! diverge from real serde.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

#[derive(Default)]
struct SerdeAttrs {
    default: bool,
    rename_all_snake: bool,
}

struct Field {
    name: String,
    default: bool,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum ItemKind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    attrs: SerdeAttrs,
    kind: ItemKind,
}

/// Derive the stub `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive stub produced invalid Rust")
}

/// Derive the stub `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive stub produced invalid Rust")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

/// Consume leading attributes, folding any `#[serde(...)]` into `attrs`.
fn parse_attrs(toks: &[TokenTree], i: &mut usize, attrs: &mut SerdeAttrs) {
    while *i < toks.len() && is_punct(&toks[*i], '#') {
        let TokenTree::Group(g) = &toks[*i + 1] else {
            panic!("serde_derive stub: malformed attribute");
        };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if !inner.is_empty() && is_ident(&inner[0], "serde") {
            let TokenTree::Group(args) = &inner[1] else {
                panic!("serde_derive stub: malformed #[serde] attribute");
            };
            parse_serde_args(args.stream(), attrs);
        }
        *i += 2;
    }
}

fn parse_serde_args(stream: TokenStream, attrs: &mut SerdeAttrs) {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Ident(id) if id.to_string() == "default" => {
                attrs.default = true;
                i += 1;
            }
            TokenTree::Ident(id) if id.to_string() == "rename_all" => {
                assert!(
                    is_punct(&toks[i + 1], '='),
                    "serde_derive stub: expected `rename_all = \"...\"`"
                );
                let lit = toks[i + 2].to_string();
                assert_eq!(
                    lit, "\"snake_case\"",
                    "serde_derive stub: only rename_all = \"snake_case\" is supported"
                );
                attrs.rename_all_snake = true;
                i += 3;
            }
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            other => panic!("serde_derive stub: unsupported serde attribute `{other}`"),
        }
    }
}

/// Skip `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if *i < toks.len() && is_ident(&toks[*i], "pub") {
        *i += 1;
        if *i < toks.len() {
            if let TokenTree::Group(g) = &toks[*i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut attrs = SerdeAttrs::default();
    parse_attrs(&toks, &mut i, &mut attrs);
    skip_vis(&toks, &mut i);

    let is_enum = if is_ident(&toks[i], "struct") {
        false
    } else if is_ident(&toks[i], "enum") {
        true
    } else {
        panic!("serde_derive stub: expected `struct` or `enum`, got `{}`", toks[i]);
    };
    i += 1;

    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected item name, got `{other}`"),
    };
    i += 1;

    if i < toks.len() && is_punct(&toks[i], '<') {
        panic!("serde_derive stub: generic types are not supported ({name})");
    }

    let kind = if is_enum {
        let TokenTree::Group(body) = &toks[i] else {
            panic!("serde_derive stub: expected enum body for {name}");
        };
        ItemKind::Enum(parse_variants(body.stream()))
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(t) if is_punct(t, ';') => ItemKind::UnitStruct,
            other => panic!("serde_derive stub: unsupported struct body for {name}: {other:?}"),
        }
    };

    Item { name, attrs, kind }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut fattrs = SerdeAttrs::default();
        parse_attrs(&toks, &mut i, &mut fattrs);
        skip_vis(&toks, &mut i);
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stub: expected field name, got `{other}`"),
        };
        i += 1;
        assert!(is_punct(&toks[i], ':'), "serde_derive stub: expected `:` after field {name}");
        i += 1;
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, default: fattrs.default });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for t in &toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut vattrs = SerdeAttrs::default();
        parse_attrs(&toks, &mut i, &mut vattrs);
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stub: expected variant name, got `{other}`"),
        };
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        if i < toks.len() && is_punct(&toks[i], '=') {
            panic!("serde_derive stub: explicit discriminants are not supported");
        }
        if i < toks.len() && is_punct(&toks[i], ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

/// serde's `rename_all = "snake_case"` rule: underscore before every
/// non-leading uppercase, then lowercase everything.
fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();
    match &item.kind {
        ItemKind::NamedStruct(fields) => {
            body.push_str(
                "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n",
            );
            for f in fields {
                let _ = writeln!(
                    body,
                    "__m.push((::std::string::String::from(\"{0}\"), \
                     ::serde::Serialize::to_value(&self.{0})));",
                    f.name
                );
            }
            body.push_str("::serde::Value::Map(__m)\n");
        }
        ItemKind::TupleStruct(1) => {
            body.push_str("::serde::Serialize::to_value(&self.0)\n");
        }
        ItemKind::TupleStruct(n) => {
            body.push_str("::serde::Value::Seq(::std::vec::Vec::from([");
            for idx in 0..*n {
                let _ = write!(body, "::serde::Serialize::to_value(&self.{idx}),");
            }
            body.push_str("]))\n");
        }
        ItemKind::UnitStruct => {
            body.push_str("::serde::Value::Null\n");
        }
        ItemKind::Enum(variants) => {
            body.push_str("match self {\n");
            for v in variants {
                let tag = if item.attrs.rename_all_snake {
                    snake_case(&v.name)
                } else {
                    v.name.clone()
                };
                match &v.shape {
                    VariantShape::Unit => {
                        let _ = writeln!(
                            body,
                            "{name}::{0} => \
                             ::serde::Value::Str(::std::string::String::from(\"{tag}\")),",
                            v.name
                        );
                    }
                    VariantShape::Tuple(1) => {
                        let _ = writeln!(
                            body,
                            "{name}::{0}(__f0) => ::serde::Value::Map(::std::vec::Vec::from([\
                             (::std::string::String::from(\"{tag}\"), \
                             ::serde::Serialize::to_value(__f0))])),",
                            v.name
                        );
                    }
                    VariantShape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let _ = writeln!(
                            body,
                            "{name}::{0}({binds}) => \
                             ::serde::Value::Map(::std::vec::Vec::from([\
                             (::std::string::String::from(\"{tag}\"), \
                             ::serde::Value::Seq(::std::vec::Vec::from([{items}])))])),",
                            v.name,
                            binds = binders.join(", "),
                            items = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect::<Vec<_>>()
                                .join(", "),
                        );
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let items = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{0}\"), \
                                     ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        let _ = writeln!(
                            body,
                            "{name}::{0} {{ {binds} }} => \
                             ::serde::Value::Map(::std::vec::Vec::from([\
                             (::std::string::String::from(\"{tag}\"), \
                             ::serde::Value::Map(::std::vec::Vec::from([{items}])))])),",
                            v.name,
                            binds = binds.join(", "),
                        );
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();
    match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let _ = writeln!(
                body,
                "let __m = __v.as_map().ok_or_else(|| \
                 ::serde::Error::custom(\"{name}: expected map\"))?;"
            );
            if item.attrs.default {
                let _ = writeln!(body, "let __d: {name} = ::std::default::Default::default();");
            }
            let _ = writeln!(body, "::std::result::Result::Ok({name} {{");
            for f in fields {
                let missing = if item.attrs.default {
                    format!("__d.{}", f.name)
                } else if f.default {
                    "::std::default::Default::default()".to_string()
                } else {
                    format!(
                        "return ::std::result::Result::Err(::serde::Error::custom(\
                         \"{name}: missing field `{0}`\"))",
                        f.name
                    )
                };
                let _ = writeln!(
                    body,
                    "{0}: match ::serde::find_field(__m, \"{0}\") {{\n\
                     ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
                     ::std::option::Option::None => {missing},\n}},",
                    f.name
                );
            }
            body.push_str("})\n");
        }
        ItemKind::TupleStruct(1) => {
            let _ = writeln!(
                body,
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
            );
        }
        ItemKind::TupleStruct(n) => {
            let _ = writeln!(
                body,
                "let __s = __v.as_seq().ok_or_else(|| \
                 ::serde::Error::custom(\"{name}: expected sequence\"))?;\n\
                 if __s.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::Error::custom(\"{name}: wrong tuple length\")); }}"
            );
            let items = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&__s[{k}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(body, "::std::result::Result::Ok({name}({items}))");
        }
        ItemKind::UnitStruct => {
            let _ = writeln!(body, "::std::result::Result::Ok({name})");
        }
        ItemKind::Enum(variants) => {
            let unit: Vec<&Variant> =
                variants.iter().filter(|v| matches!(v.shape, VariantShape::Unit)).collect();
            let payload: Vec<&Variant> =
                variants.iter().filter(|v| !matches!(v.shape, VariantShape::Unit)).collect();
            body.push_str("match __v {\n");
            if !unit.is_empty() {
                body.push_str("::serde::Value::Str(__s) => match __s.as_str() {\n");
                for v in &unit {
                    let tag = if item.attrs.rename_all_snake {
                        snake_case(&v.name)
                    } else {
                        v.name.clone()
                    };
                    let _ = writeln!(
                        body,
                        "\"{tag}\" => ::std::result::Result::Ok({name}::{0}),",
                        v.name
                    );
                }
                let _ = writeln!(
                    body,
                    "__other => ::std::result::Result::Err(::serde::Error::custom(\
                     format!(\"{name}: unknown variant `{{__other}}`\"))),\n}},"
                );
            }
            if !payload.is_empty() {
                body.push_str(
                    "::serde::Value::Map(__m) if __m.len() == 1 => {\n\
                     let (__k, __payload) = &__m[0];\n\
                     match __k.as_str() {\n",
                );
                for v in &payload {
                    let tag = if item.attrs.rename_all_snake {
                        snake_case(&v.name)
                    } else {
                        v.name.clone()
                    };
                    match &v.shape {
                        VariantShape::Unit => unreachable!(),
                        VariantShape::Tuple(1) => {
                            let _ = writeln!(
                                body,
                                "\"{tag}\" => ::std::result::Result::Ok({name}::{0}(\
                                 ::serde::Deserialize::from_value(__payload)?)),",
                                v.name
                            );
                        }
                        VariantShape::Tuple(n) => {
                            let items = (0..*n)
                                .map(|k| format!("::serde::Deserialize::from_value(&__s[{k}])?"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            let _ = writeln!(
                                body,
                                "\"{tag}\" => {{\n\
                                 let __s = __payload.as_seq().ok_or_else(|| \
                                 ::serde::Error::custom(\"{name}::{0}: expected sequence\"))?;\n\
                                 if __s.len() != {n} {{ return ::std::result::Result::Err(\
                                 ::serde::Error::custom(\"{name}::{0}: wrong tuple length\")); }}\n\
                                 ::std::result::Result::Ok({name}::{0}({items}))\n}},",
                                v.name
                            );
                        }
                        VariantShape::Struct(fields) => {
                            let mut inner = String::new();
                            for f in fields {
                                let _ = writeln!(
                                    inner,
                                    "{0}: match ::serde::find_field(__mm, \"{0}\") {{\n\
                                     ::std::option::Option::Some(__x) => \
                                     ::serde::Deserialize::from_value(__x)?,\n\
                                     ::std::option::Option::None => \
                                     return ::std::result::Result::Err(::serde::Error::custom(\
                                     \"{name}::{1}: missing field `{0}`\")),\n}},",
                                    f.name, v.name
                                );
                            }
                            let _ = writeln!(
                                body,
                                "\"{tag}\" => {{\n\
                                 let __mm = __payload.as_map().ok_or_else(|| \
                                 ::serde::Error::custom(\"{name}::{0}: expected map\"))?;\n\
                                 ::std::result::Result::Ok({name}::{0} {{\n{inner}}})\n}},",
                                v.name
                            );
                        }
                    }
                }
                let _ = writeln!(
                    body,
                    "__other => ::std::result::Result::Err(::serde::Error::custom(\
                     format!(\"{name}: unknown variant `{{__other}}`\"))),\n}}\n}},"
                );
            }
            let _ = writeln!(
                body,
                "__other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"{name}: cannot deserialize from {{__other:?}}\"))),\n}}"
            );
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> \
         {{\n{body}}}\n}}\n"
    )
}
