//! Offline stub of `serde_json`.
//!
//! Renders and parses JSON against the stub `serde::Value` model. Provides
//! the three entry points the workspace uses: [`to_string`],
//! [`to_string_pretty`], and [`from_str`]. The emitted JSON matches what
//! real `serde_json` produces for the supported type shapes (externally
//! tagged enums, transparent newtype structs, two-space pretty indent).

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` to a pretty JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..level * width {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // Match serde_json: keep a fractional marker so floats stay floats.
        let s = x.to_string();
        out.push_str(&s);
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/inf; serde_json emits null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at offset {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.eat_lit("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_lit("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_lit("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':', "expected `:`")?;
                    self.skip_ws();
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat(b'\\', "expected low surrogate")?;
                                self.eat(b'u', "expected low surrogate")?;
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Consume the full UTF-8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    if self.pos > self.bytes.len() {
                        return Err(self.err("truncated UTF-8"));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| self.err("invalid number"))
        } else {
            match text.parse::<u64>() {
                Ok(v) => Ok(Value::U64(v)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::F64)
                    .map_err(|_| self.err("invalid number")),
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    if first < 0x80 {
        1
    } else if first < 0xE0 {
        2
    } else if first < 0xF0 {
        3
    } else {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Seq(vec![Value::F64(1.5), Value::Null])),
            ("c".into(), Value::Str("x \"quoted\"\n".into())),
            ("d".into(), Value::I64(-3)),
        ]);
        let s = to_string(&WrapValue(v.clone())).unwrap();
        let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
        let back = p.parse_value().unwrap();
        assert_eq!(back, v);
    }

    struct WrapValue(Value);
    impl Serialize for WrapValue {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn floats_keep_marker() {
        let s = to_string(&WrapValue(Value::F64(3.0))).unwrap();
        assert_eq!(s, "3.0");
    }
}
