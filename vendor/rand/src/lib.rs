//! Offline stub of the `rand` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! patches `rand` with this minimal implementation (see `[patch.crates-io]`
//! in the workspace `Cargo.toml`). It covers exactly the API surface the
//! simulator uses: `rngs::SmallRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng` extension methods `gen` / `gen_range`.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — high-quality,
//! deterministic, and cheaply cloneable, which is all the deterministic
//! simulation needs. Streams do NOT bit-match the real `rand::SmallRng`;
//! nothing in the workspace depends on the concrete stream values, only on
//! determinism and statistical quality.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding support. Only `seed_from_u64` is provided; that is the only
/// constructor the workspace uses.
pub trait SeedableRng: Sized {
    /// Construct the generator from a 64-bit seed, expanding it with
    /// SplitMix64 as recommended by the xoshiro authors.
    fn seed_from_u64(seed: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from the full value domain via
/// `Rng::gen` (`[0,1)` for floats, the whole range for integers and bool).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased sample in `[0, span)` by rejection on the top of the u64 domain.
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + below(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast PRNG (xoshiro256++ in this stub).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_and_clonable() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = a.clone();
        for _ in 0..64 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            assert_eq!(x, c.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w: usize = r.gen_range(0usize..=3);
            assert!(w <= 3);
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_f64_covers_range() {
        let mut r = SmallRng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
