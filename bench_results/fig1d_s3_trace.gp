set terminal pngcairo size 900,600
set output 'fig1d_s3_trace.png'
set title 'Fig. 1(d): Strategy 3 service order (server 1, 0.2 s window)'
set xlabel 'time (s)'
set ylabel 'LBN'
set key outside
plot 'fig1d_s3_trace_strategy_3.dat' with points pt 7 ps 0.3 title 'strategy 3'
