set terminal pngcairo size 900,600
set output 'fig7b_seek.png'
set title 'Fig. 7(b): average seek distance on server 1'
set xlabel 'time (s)'
set ylabel 'sectors'
set key outside
plot 'fig7b_seek_vanilla.dat' with linespoints title 'vanilla', \
     'fig7b_seek_adaptive_dualpar.dat' with linespoints title 'adaptive dualpar'
