set terminal pngcairo size 900,600
set output 'fig1c_s2_trace.png'
set title 'Fig. 1(c): Strategy 2 service order (server 1, 0.2 s window)'
set xlabel 'time (s)'
set ylabel 'LBN'
set key outside
plot 'fig1c_s2_trace_strategy_2.dat' with points pt 7 ps 0.3 title 'strategy 2'
