set terminal pngcairo size 900,600
set output 'fig6_lbn_traces.png'
set title 'Fig. 6: LBN service order, 2 concurrent mpi-io-test (server 1, 1 s)'
set xlabel 'time (s)'
set ylabel 'LBN'
set key outside
plot 'fig6_lbn_traces_vanilla.dat' with points pt 7 ps 0.3 title 'vanilla', \
     'fig6_lbn_traces_dualpar.dat' with points pt 7 ps 0.3 title 'dualpar'
