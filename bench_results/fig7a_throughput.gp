set terminal pngcairo size 900,600
set output 'fig7a_throughput.png'
set title 'Fig. 7(a): system throughput, hpio joins at t=10 s'
set xlabel 'time (s)'
set ylabel 'MB/s'
set key outside
plot 'fig7a_throughput_vanilla.dat' with linespoints title 'vanilla', \
     'fig7a_throughput_adaptive_dualpar.dat' with linespoints title 'adaptive dualpar'
