/root/repo/target/debug/examples/seqsearch-51792c28002ee8fd.d: crates/bench/../../examples/seqsearch.rs

/root/repo/target/debug/examples/seqsearch-51792c28002ee8fd: crates/bench/../../examples/seqsearch.rs

crates/bench/../../examples/seqsearch.rs:
