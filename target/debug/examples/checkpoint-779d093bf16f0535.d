/root/repo/target/debug/examples/checkpoint-779d093bf16f0535.d: crates/bench/../../examples/checkpoint.rs

/root/repo/target/debug/examples/checkpoint-779d093bf16f0535: crates/bench/../../examples/checkpoint.rs

crates/bench/../../examples/checkpoint.rs:
