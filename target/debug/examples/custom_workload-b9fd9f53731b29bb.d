/root/repo/target/debug/examples/custom_workload-b9fd9f53731b29bb.d: crates/bench/../../examples/custom_workload.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_workload-b9fd9f53731b29bb.rmeta: crates/bench/../../examples/custom_workload.rs Cargo.toml

crates/bench/../../examples/custom_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
