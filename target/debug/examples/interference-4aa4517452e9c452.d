/root/repo/target/debug/examples/interference-4aa4517452e9c452.d: crates/bench/../../examples/interference.rs

/root/repo/target/debug/examples/interference-4aa4517452e9c452: crates/bench/../../examples/interference.rs

crates/bench/../../examples/interference.rs:
