/root/repo/target/debug/examples/seqsearch-cf35ce99d819ac9b.d: crates/bench/../../examples/seqsearch.rs

/root/repo/target/debug/examples/seqsearch-cf35ce99d819ac9b: crates/bench/../../examples/seqsearch.rs

crates/bench/../../examples/seqsearch.rs:
