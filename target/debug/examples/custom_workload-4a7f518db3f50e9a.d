/root/repo/target/debug/examples/custom_workload-4a7f518db3f50e9a.d: crates/bench/../../examples/custom_workload.rs

/root/repo/target/debug/examples/custom_workload-4a7f518db3f50e9a: crates/bench/../../examples/custom_workload.rs

crates/bench/../../examples/custom_workload.rs:
