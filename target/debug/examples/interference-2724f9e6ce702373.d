/root/repo/target/debug/examples/interference-2724f9e6ce702373.d: crates/bench/../../examples/interference.rs Cargo.toml

/root/repo/target/debug/examples/libinterference-2724f9e6ce702373.rmeta: crates/bench/../../examples/interference.rs Cargo.toml

crates/bench/../../examples/interference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
