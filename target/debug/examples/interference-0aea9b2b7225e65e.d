/root/repo/target/debug/examples/interference-0aea9b2b7225e65e.d: crates/bench/../../examples/interference.rs

/root/repo/target/debug/examples/interference-0aea9b2b7225e65e: crates/bench/../../examples/interference.rs

crates/bench/../../examples/interference.rs:
