/root/repo/target/debug/examples/quickstart-759191d731b699a1.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-759191d731b699a1: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
