/root/repo/target/debug/examples/checkpoint-5128ce264aa90515.d: crates/bench/../../examples/checkpoint.rs Cargo.toml

/root/repo/target/debug/examples/libcheckpoint-5128ce264aa90515.rmeta: crates/bench/../../examples/checkpoint.rs Cargo.toml

crates/bench/../../examples/checkpoint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
