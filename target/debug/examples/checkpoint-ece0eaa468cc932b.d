/root/repo/target/debug/examples/checkpoint-ece0eaa468cc932b.d: crates/bench/../../examples/checkpoint.rs

/root/repo/target/debug/examples/checkpoint-ece0eaa468cc932b: crates/bench/../../examples/checkpoint.rs

crates/bench/../../examples/checkpoint.rs:
