/root/repo/target/debug/examples/seqsearch-a5068c4be41207df.d: crates/bench/../../examples/seqsearch.rs Cargo.toml

/root/repo/target/debug/examples/libseqsearch-a5068c4be41207df.rmeta: crates/bench/../../examples/seqsearch.rs Cargo.toml

crates/bench/../../examples/seqsearch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
