/root/repo/target/debug/examples/custom_workload-2286977cea1f5891.d: crates/bench/../../examples/custom_workload.rs

/root/repo/target/debug/examples/custom_workload-2286977cea1f5891: crates/bench/../../examples/custom_workload.rs

crates/bench/../../examples/custom_workload.rs:
