/root/repo/target/debug/examples/quickstart-ea5799896b101dc9.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ea5799896b101dc9: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
