/root/repo/target/debug/examples/quickstart-5fd293e1879b1537.d: crates/bench/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-5fd293e1879b1537.rmeta: crates/bench/../../examples/quickstart.rs Cargo.toml

crates/bench/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
