/root/repo/target/debug/deps/dualpar_bench-c4daf34034e214b6.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/dualpar_bench-c4daf34034e214b6: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
