/root/repo/target/debug/deps/dualpar_pfs-8e9b1e753f227e52.d: crates/pfs/src/lib.rs crates/pfs/src/alloc.rs crates/pfs/src/ranges.rs crates/pfs/src/fs.rs crates/pfs/src/layout.rs

/root/repo/target/debug/deps/libdualpar_pfs-8e9b1e753f227e52.rlib: crates/pfs/src/lib.rs crates/pfs/src/alloc.rs crates/pfs/src/ranges.rs crates/pfs/src/fs.rs crates/pfs/src/layout.rs

/root/repo/target/debug/deps/libdualpar_pfs-8e9b1e753f227e52.rmeta: crates/pfs/src/lib.rs crates/pfs/src/alloc.rs crates/pfs/src/ranges.rs crates/pfs/src/fs.rs crates/pfs/src/layout.rs

crates/pfs/src/lib.rs:
crates/pfs/src/alloc.rs:
crates/pfs/src/ranges.rs:
crates/pfs/src/fs.rs:
crates/pfs/src/layout.rs:
