/root/repo/target/debug/deps/ablation_writeback-4ccbcccd37331e5a.d: crates/bench/benches/ablation_writeback.rs Cargo.toml

/root/repo/target/debug/deps/libablation_writeback-4ccbcccd37331e5a.rmeta: crates/bench/benches/ablation_writeback.rs Cargo.toml

crates/bench/benches/ablation_writeback.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
