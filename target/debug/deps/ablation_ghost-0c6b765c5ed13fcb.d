/root/repo/target/debug/deps/ablation_ghost-0c6b765c5ed13fcb.d: crates/bench/benches/ablation_ghost.rs

/root/repo/target/debug/deps/ablation_ghost-0c6b765c5ed13fcb: crates/bench/benches/ablation_ghost.rs

crates/bench/benches/ablation_ghost.rs:
