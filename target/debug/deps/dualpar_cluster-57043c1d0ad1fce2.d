/root/repo/target/debug/deps/dualpar_cluster-57043c1d0ad1fce2.d: crates/cluster/src/lib.rs crates/cluster/src/datadriven.rs crates/cluster/src/engine.rs crates/cluster/src/exec.rs crates/cluster/src/config.rs crates/cluster/src/metrics.rs

/root/repo/target/debug/deps/libdualpar_cluster-57043c1d0ad1fce2.rlib: crates/cluster/src/lib.rs crates/cluster/src/datadriven.rs crates/cluster/src/engine.rs crates/cluster/src/exec.rs crates/cluster/src/config.rs crates/cluster/src/metrics.rs

/root/repo/target/debug/deps/libdualpar_cluster-57043c1d0ad1fce2.rmeta: crates/cluster/src/lib.rs crates/cluster/src/datadriven.rs crates/cluster/src/engine.rs crates/cluster/src/exec.rs crates/cluster/src/config.rs crates/cluster/src/metrics.rs

crates/cluster/src/lib.rs:
crates/cluster/src/datadriven.rs:
crates/cluster/src/engine.rs:
crates/cluster/src/exec.rs:
crates/cluster/src/config.rs:
crates/cluster/src/metrics.rs:
