/root/repo/target/debug/deps/dualpar_cache-69f1b48509efd6c2.d: crates/cache/src/lib.rs crates/cache/src/store.rs

/root/repo/target/debug/deps/dualpar_cache-69f1b48509efd6c2: crates/cache/src/lib.rs crates/cache/src/store.rs

crates/cache/src/lib.rs:
crates/cache/src/store.rs:
