/root/repo/target/debug/deps/dualpar_integration-5cdf8a875d133fc6.d: tests/src/lib.rs

/root/repo/target/debug/deps/dualpar_integration-5cdf8a875d133fc6: tests/src/lib.rs

tests/src/lib.rs:
