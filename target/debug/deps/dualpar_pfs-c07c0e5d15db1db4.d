/root/repo/target/debug/deps/dualpar_pfs-c07c0e5d15db1db4.d: crates/pfs/src/lib.rs crates/pfs/src/alloc.rs crates/pfs/src/ranges.rs crates/pfs/src/fs.rs crates/pfs/src/layout.rs Cargo.toml

/root/repo/target/debug/deps/libdualpar_pfs-c07c0e5d15db1db4.rmeta: crates/pfs/src/lib.rs crates/pfs/src/alloc.rs crates/pfs/src/ranges.rs crates/pfs/src/fs.rs crates/pfs/src/layout.rs Cargo.toml

crates/pfs/src/lib.rs:
crates/pfs/src/alloc.rs:
crates/pfs/src/ranges.rs:
crates/pfs/src/fs.rs:
crates/pfs/src/layout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
