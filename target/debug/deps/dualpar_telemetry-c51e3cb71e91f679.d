/root/repo/target/debug/deps/dualpar_telemetry-c51e3cb71e91f679.d: crates/telemetry/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdualpar_telemetry-c51e3cb71e91f679.rmeta: crates/telemetry/src/lib.rs Cargo.toml

crates/telemetry/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
