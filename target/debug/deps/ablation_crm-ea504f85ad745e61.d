/root/repo/target/debug/deps/ablation_crm-ea504f85ad745e61.d: crates/bench/benches/ablation_crm.rs Cargo.toml

/root/repo/target/debug/deps/libablation_crm-ea504f85ad745e61.rmeta: crates/bench/benches/ablation_crm.rs Cargo.toml

crates/bench/benches/ablation_crm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
