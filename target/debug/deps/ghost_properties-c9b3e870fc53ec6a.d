/root/repo/target/debug/deps/ghost_properties-c9b3e870fc53ec6a.d: crates/core/tests/ghost_properties.rs Cargo.toml

/root/repo/target/debug/deps/libghost_properties-c9b3e870fc53ec6a.rmeta: crates/core/tests/ghost_properties.rs Cargo.toml

crates/core/tests/ghost_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
