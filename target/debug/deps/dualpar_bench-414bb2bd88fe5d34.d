/root/repo/target/debug/deps/dualpar_bench-414bb2bd88fe5d34.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/libdualpar_bench-414bb2bd88fe5d34.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/libdualpar_bench-414bb2bd88fe5d34.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
