/root/repo/target/debug/deps/dualpar_core-f5b53f9c0cf18935.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/crm.rs crates/core/src/emc.rs crates/core/src/pec.rs

/root/repo/target/debug/deps/dualpar_core-f5b53f9c0cf18935: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/crm.rs crates/core/src/emc.rs crates/core/src/pec.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/crm.rs:
crates/core/src/emc.rs:
crates/core/src/pec.rs:
