/root/repo/target/debug/deps/ablation_thresholds-13761578338ff91b.d: crates/bench/benches/ablation_thresholds.rs

/root/repo/target/debug/deps/ablation_thresholds-13761578338ff91b: crates/bench/benches/ablation_thresholds.rs

crates/bench/benches/ablation_thresholds.rs:
