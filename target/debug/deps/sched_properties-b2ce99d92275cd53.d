/root/repo/target/debug/deps/sched_properties-b2ce99d92275cd53.d: crates/disk/tests/sched_properties.rs Cargo.toml

/root/repo/target/debug/deps/libsched_properties-b2ce99d92275cd53.rmeta: crates/disk/tests/sched_properties.rs Cargo.toml

crates/disk/tests/sched_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
