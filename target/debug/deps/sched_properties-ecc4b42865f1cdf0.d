/root/repo/target/debug/deps/sched_properties-ecc4b42865f1cdf0.d: crates/disk/tests/sched_properties.rs

/root/repo/target/debug/deps/sched_properties-ecc4b42865f1cdf0: crates/disk/tests/sched_properties.rs

crates/disk/tests/sched_properties.rs:
