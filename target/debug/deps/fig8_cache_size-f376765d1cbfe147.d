/root/repo/target/debug/deps/fig8_cache_size-f376765d1cbfe147.d: crates/bench/benches/fig8_cache_size.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_cache_size-f376765d1cbfe147.rmeta: crates/bench/benches/fig8_cache_size.rs Cargo.toml

crates/bench/benches/fig8_cache_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
