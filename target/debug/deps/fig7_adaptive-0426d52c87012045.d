/root/repo/target/debug/deps/fig7_adaptive-0426d52c87012045.d: crates/bench/benches/fig7_adaptive.rs

/root/repo/target/debug/deps/fig7_adaptive-0426d52c87012045: crates/bench/benches/fig7_adaptive.rs

crates/bench/benches/fig7_adaptive.rs:
