/root/repo/target/debug/deps/access_properties-a29bd015e7a97e09.d: crates/mpiio/tests/access_properties.rs Cargo.toml

/root/repo/target/debug/deps/libaccess_properties-a29bd015e7a97e09.rmeta: crates/mpiio/tests/access_properties.rs Cargo.toml

crates/mpiio/tests/access_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
