/root/repo/target/debug/deps/ablation_crm-1be364650b5d2ea9.d: crates/bench/benches/ablation_crm.rs

/root/repo/target/debug/deps/ablation_crm-1be364650b5d2ea9: crates/bench/benches/ablation_crm.rs

crates/bench/benches/ablation_crm.rs:
