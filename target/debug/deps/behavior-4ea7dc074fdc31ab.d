/root/repo/target/debug/deps/behavior-4ea7dc074fdc31ab.d: tests/tests/behavior.rs

/root/repo/target/debug/deps/behavior-4ea7dc074fdc31ab: tests/tests/behavior.rs

tests/tests/behavior.rs:
