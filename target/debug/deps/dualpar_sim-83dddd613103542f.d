/root/repo/target/debug/deps/dualpar_sim-83dddd613103542f.d: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/resource.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/debug/deps/dualpar_sim-83dddd613103542f: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/resource.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/event.rs:
crates/simcore/src/resource.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
