/root/repo/target/debug/deps/dualpar_disk-d113f7ada009a2fa.d: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/model.rs crates/disk/src/request.rs crates/disk/src/sched/mod.rs crates/disk/src/sched/anticipatory.rs crates/disk/src/sched/cfq.rs crates/disk/src/sched/deadline.rs crates/disk/src/sched/simple.rs crates/disk/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libdualpar_disk-d113f7ada009a2fa.rmeta: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/model.rs crates/disk/src/request.rs crates/disk/src/sched/mod.rs crates/disk/src/sched/anticipatory.rs crates/disk/src/sched/cfq.rs crates/disk/src/sched/deadline.rs crates/disk/src/sched/simple.rs crates/disk/src/trace.rs Cargo.toml

crates/disk/src/lib.rs:
crates/disk/src/disk.rs:
crates/disk/src/model.rs:
crates/disk/src/request.rs:
crates/disk/src/sched/mod.rs:
crates/disk/src/sched/anticipatory.rs:
crates/disk/src/sched/cfq.rs:
crates/disk/src/sched/deadline.rs:
crates/disk/src/sched/simple.rs:
crates/disk/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
