/root/repo/target/debug/deps/smoke-fa40e3f47eae1f10.d: tests/tests/smoke.rs

/root/repo/target/debug/deps/smoke-fa40e3f47eae1f10: tests/tests/smoke.rs

tests/tests/smoke.rs:
