/root/repo/target/debug/deps/ablation_ghost-9d9ec266d167a71f.d: crates/bench/benches/ablation_ghost.rs Cargo.toml

/root/repo/target/debug/deps/libablation_ghost-9d9ec266d167a71f.rmeta: crates/bench/benches/ablation_ghost.rs Cargo.toml

crates/bench/benches/ablation_ghost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
