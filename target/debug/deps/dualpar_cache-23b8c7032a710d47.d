/root/repo/target/debug/deps/dualpar_cache-23b8c7032a710d47.d: crates/cache/src/lib.rs crates/cache/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libdualpar_cache-23b8c7032a710d47.rmeta: crates/cache/src/lib.rs crates/cache/src/store.rs Cargo.toml

crates/cache/src/lib.rs:
crates/cache/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
