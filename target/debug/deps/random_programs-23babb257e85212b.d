/root/repo/target/debug/deps/random_programs-23babb257e85212b.d: tests/tests/random_programs.rs

/root/repo/target/debug/deps/random_programs-23babb257e85212b: tests/tests/random_programs.rs

tests/tests/random_programs.rs:
