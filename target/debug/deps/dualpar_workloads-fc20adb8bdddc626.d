/root/repo/target/debug/deps/dualpar_workloads-fc20adb8bdddc626.d: crates/workloads/src/lib.rs crates/workloads/src/common.rs crates/workloads/src/replay.rs crates/workloads/src/suite.rs Cargo.toml

/root/repo/target/debug/deps/libdualpar_workloads-fc20adb8bdddc626.rmeta: crates/workloads/src/lib.rs crates/workloads/src/common.rs crates/workloads/src/replay.rs crates/workloads/src/suite.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/common.rs:
crates/workloads/src/replay.rs:
crates/workloads/src/suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
