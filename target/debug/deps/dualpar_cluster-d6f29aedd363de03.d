/root/repo/target/debug/deps/dualpar_cluster-d6f29aedd363de03.d: crates/cluster/src/lib.rs crates/cluster/src/datadriven.rs crates/cluster/src/engine.rs crates/cluster/src/exec.rs crates/cluster/src/builder.rs crates/cluster/src/config.rs crates/cluster/src/metrics.rs

/root/repo/target/debug/deps/libdualpar_cluster-d6f29aedd363de03.rlib: crates/cluster/src/lib.rs crates/cluster/src/datadriven.rs crates/cluster/src/engine.rs crates/cluster/src/exec.rs crates/cluster/src/builder.rs crates/cluster/src/config.rs crates/cluster/src/metrics.rs

/root/repo/target/debug/deps/libdualpar_cluster-d6f29aedd363de03.rmeta: crates/cluster/src/lib.rs crates/cluster/src/datadriven.rs crates/cluster/src/engine.rs crates/cluster/src/exec.rs crates/cluster/src/builder.rs crates/cluster/src/config.rs crates/cluster/src/metrics.rs

crates/cluster/src/lib.rs:
crates/cluster/src/datadriven.rs:
crates/cluster/src/engine.rs:
crates/cluster/src/exec.rs:
crates/cluster/src/builder.rs:
crates/cluster/src/config.rs:
crates/cluster/src/metrics.rs:
