/root/repo/target/debug/deps/ablation_sched-dc6d08e3225c8a5d.d: crates/bench/benches/ablation_sched.rs

/root/repo/target/debug/deps/ablation_sched-dc6d08e3225c8a5d: crates/bench/benches/ablation_sched.rs

crates/bench/benches/ablation_sched.rs:
