/root/repo/target/debug/deps/smoke-ccd9b4c0b138978a.d: tests/tests/smoke.rs

/root/repo/target/debug/deps/smoke-ccd9b4c0b138978a: tests/tests/smoke.rs

tests/tests/smoke.rs:
