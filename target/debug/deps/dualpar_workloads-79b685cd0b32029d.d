/root/repo/target/debug/deps/dualpar_workloads-79b685cd0b32029d.d: crates/workloads/src/lib.rs crates/workloads/src/common.rs crates/workloads/src/replay.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/dualpar_workloads-79b685cd0b32029d: crates/workloads/src/lib.rs crates/workloads/src/common.rs crates/workloads/src/replay.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/common.rs:
crates/workloads/src/replay.rs:
crates/workloads/src/suite.rs:
