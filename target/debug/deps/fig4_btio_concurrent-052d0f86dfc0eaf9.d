/root/repo/target/debug/deps/fig4_btio_concurrent-052d0f86dfc0eaf9.d: crates/bench/benches/fig4_btio_concurrent.rs

/root/repo/target/debug/deps/fig4_btio_concurrent-052d0f86dfc0eaf9: crates/bench/benches/fig4_btio_concurrent.rs

crates/bench/benches/fig4_btio_concurrent.rs:
