/root/repo/target/debug/deps/dualpar_disk-ee537618ab08f56a.d: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/model.rs crates/disk/src/request.rs crates/disk/src/sched/mod.rs crates/disk/src/sched/anticipatory.rs crates/disk/src/sched/cfq.rs crates/disk/src/sched/deadline.rs crates/disk/src/sched/simple.rs crates/disk/src/trace.rs

/root/repo/target/debug/deps/libdualpar_disk-ee537618ab08f56a.rlib: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/model.rs crates/disk/src/request.rs crates/disk/src/sched/mod.rs crates/disk/src/sched/anticipatory.rs crates/disk/src/sched/cfq.rs crates/disk/src/sched/deadline.rs crates/disk/src/sched/simple.rs crates/disk/src/trace.rs

/root/repo/target/debug/deps/libdualpar_disk-ee537618ab08f56a.rmeta: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/model.rs crates/disk/src/request.rs crates/disk/src/sched/mod.rs crates/disk/src/sched/anticipatory.rs crates/disk/src/sched/cfq.rs crates/disk/src/sched/deadline.rs crates/disk/src/sched/simple.rs crates/disk/src/trace.rs

crates/disk/src/lib.rs:
crates/disk/src/disk.rs:
crates/disk/src/model.rs:
crates/disk/src/request.rs:
crates/disk/src/sched/mod.rs:
crates/disk/src/sched/anticipatory.rs:
crates/disk/src/sched/cfq.rs:
crates/disk/src/sched/deadline.rs:
crates/disk/src/sched/simple.rs:
crates/disk/src/trace.rs:
