/root/repo/target/debug/deps/striping_properties-72ed2f329c320294.d: crates/pfs/tests/striping_properties.rs

/root/repo/target/debug/deps/striping_properties-72ed2f329c320294: crates/pfs/tests/striping_properties.rs

crates/pfs/tests/striping_properties.rs:
