/root/repo/target/debug/deps/random_programs-eff6222276554d93.d: tests/tests/random_programs.rs Cargo.toml

/root/repo/target/debug/deps/librandom_programs-eff6222276554d93.rmeta: tests/tests/random_programs.rs Cargo.toml

tests/tests/random_programs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
