/root/repo/target/debug/deps/dualpar_sim-95630416cdb452d3.d: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/resource.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/debug/deps/libdualpar_sim-95630416cdb452d3.rlib: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/resource.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/debug/deps/libdualpar_sim-95630416cdb452d3.rmeta: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/resource.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/event.rs:
crates/simcore/src/resource.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
