/root/repo/target/debug/deps/smoke-21c32b22440e943a.d: tests/tests/smoke.rs

/root/repo/target/debug/deps/smoke-21c32b22440e943a: tests/tests/smoke.rs

tests/tests/smoke.rs:
