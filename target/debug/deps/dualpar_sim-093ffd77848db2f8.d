/root/repo/target/debug/deps/dualpar_sim-093ffd77848db2f8.d: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/resource.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libdualpar_sim-093ffd77848db2f8.rmeta: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/resource.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs Cargo.toml

crates/simcore/src/lib.rs:
crates/simcore/src/event.rs:
crates/simcore/src/resource.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
