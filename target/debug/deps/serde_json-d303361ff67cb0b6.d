/root/repo/target/debug/deps/serde_json-d303361ff67cb0b6.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-d303361ff67cb0b6.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-d303361ff67cb0b6.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
