/root/repo/target/debug/deps/dualpar_workloads-ad1a682b5ac8e75e.d: crates/workloads/src/lib.rs crates/workloads/src/common.rs crates/workloads/src/replay.rs crates/workloads/src/suite.rs Cargo.toml

/root/repo/target/debug/deps/libdualpar_workloads-ad1a682b5ac8e75e.rmeta: crates/workloads/src/lib.rs crates/workloads/src/common.rs crates/workloads/src/replay.rs crates/workloads/src/suite.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/common.rs:
crates/workloads/src/replay.rs:
crates/workloads/src/suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
