/root/repo/target/debug/deps/shapes-332f054c672cd716.d: tests/tests/shapes.rs

/root/repo/target/debug/deps/shapes-332f054c672cd716: tests/tests/shapes.rs

tests/tests/shapes.rs:
