/root/repo/target/debug/deps/proptests-142a605d49fd3476.d: crates/simcore/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-142a605d49fd3476.rmeta: crates/simcore/tests/proptests.rs Cargo.toml

crates/simcore/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
