/root/repo/target/debug/deps/dualpar_integration-9c1976c1d3d11709.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdualpar_integration-9c1976c1d3d11709.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
