/root/repo/target/debug/deps/dualpar_cluster-b32cba01afb54f98.d: crates/cluster/src/lib.rs crates/cluster/src/datadriven.rs crates/cluster/src/engine.rs crates/cluster/src/exec.rs crates/cluster/src/config.rs crates/cluster/src/metrics.rs

/root/repo/target/debug/deps/dualpar_cluster-b32cba01afb54f98: crates/cluster/src/lib.rs crates/cluster/src/datadriven.rs crates/cluster/src/engine.rs crates/cluster/src/exec.rs crates/cluster/src/config.rs crates/cluster/src/metrics.rs

crates/cluster/src/lib.rs:
crates/cluster/src/datadriven.rs:
crates/cluster/src/engine.rs:
crates/cluster/src/exec.rs:
crates/cluster/src/config.rs:
crates/cluster/src/metrics.rs:
