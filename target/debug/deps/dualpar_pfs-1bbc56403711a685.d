/root/repo/target/debug/deps/dualpar_pfs-1bbc56403711a685.d: crates/pfs/src/lib.rs crates/pfs/src/alloc.rs crates/pfs/src/ranges.rs crates/pfs/src/fs.rs crates/pfs/src/layout.rs

/root/repo/target/debug/deps/dualpar_pfs-1bbc56403711a685: crates/pfs/src/lib.rs crates/pfs/src/alloc.rs crates/pfs/src/ranges.rs crates/pfs/src/fs.rs crates/pfs/src/layout.rs

crates/pfs/src/lib.rs:
crates/pfs/src/alloc.rs:
crates/pfs/src/ranges.rs:
crates/pfs/src/fs.rs:
crates/pfs/src/layout.rs:
