/root/repo/target/debug/deps/random_programs-2bfa97ddfe38b15b.d: tests/tests/random_programs.rs

/root/repo/target/debug/deps/random_programs-2bfa97ddfe38b15b: tests/tests/random_programs.rs

tests/tests/random_programs.rs:
