/root/repo/target/debug/deps/fig7_adaptive-ceb69b3a02396a68.d: crates/bench/benches/fig7_adaptive.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_adaptive-ceb69b3a02396a68.rmeta: crates/bench/benches/fig7_adaptive.rs Cargo.toml

crates/bench/benches/fig7_adaptive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
