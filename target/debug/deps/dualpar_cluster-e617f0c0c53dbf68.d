/root/repo/target/debug/deps/dualpar_cluster-e617f0c0c53dbf68.d: crates/cluster/src/lib.rs crates/cluster/src/datadriven.rs crates/cluster/src/engine.rs crates/cluster/src/exec.rs crates/cluster/src/builder.rs crates/cluster/src/config.rs crates/cluster/src/metrics.rs

/root/repo/target/debug/deps/dualpar_cluster-e617f0c0c53dbf68: crates/cluster/src/lib.rs crates/cluster/src/datadriven.rs crates/cluster/src/engine.rs crates/cluster/src/exec.rs crates/cluster/src/builder.rs crates/cluster/src/config.rs crates/cluster/src/metrics.rs

crates/cluster/src/lib.rs:
crates/cluster/src/datadriven.rs:
crates/cluster/src/engine.rs:
crates/cluster/src/exec.rs:
crates/cluster/src/builder.rs:
crates/cluster/src/config.rs:
crates/cluster/src/metrics.rs:
