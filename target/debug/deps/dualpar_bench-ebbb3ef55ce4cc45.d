/root/repo/target/debug/deps/dualpar_bench-ebbb3ef55ce4cc45.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libdualpar_bench-ebbb3ef55ce4cc45.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
