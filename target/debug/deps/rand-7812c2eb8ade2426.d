/root/repo/target/debug/deps/rand-7812c2eb8ade2426.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-7812c2eb8ade2426.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
