/root/repo/target/debug/deps/fig1_motivation-1f7108b5bb978cb2.d: crates/bench/benches/fig1_motivation.rs

/root/repo/target/debug/deps/fig1_motivation-1f7108b5bb978cb2: crates/bench/benches/fig1_motivation.rs

crates/bench/benches/fig1_motivation.rs:
