/root/repo/target/debug/deps/dualpar_integration-ef73902a939057c4.d: tests/src/lib.rs

/root/repo/target/debug/deps/dualpar_integration-ef73902a939057c4: tests/src/lib.rs

tests/src/lib.rs:
