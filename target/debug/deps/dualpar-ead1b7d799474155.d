/root/repo/target/debug/deps/dualpar-ead1b7d799474155.d: crates/bench/src/bin/dualpar.rs

/root/repo/target/debug/deps/dualpar-ead1b7d799474155: crates/bench/src/bin/dualpar.rs

crates/bench/src/bin/dualpar.rs:
