/root/repo/target/debug/deps/ablation_sched-828f3a4fd0375950.d: crates/bench/benches/ablation_sched.rs Cargo.toml

/root/repo/target/debug/deps/libablation_sched-828f3a4fd0375950.rmeta: crates/bench/benches/ablation_sched.rs Cargo.toml

crates/bench/benches/ablation_sched.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
