/root/repo/target/debug/deps/dualpar-fab2656c022b3126.d: crates/bench/src/bin/dualpar.rs Cargo.toml

/root/repo/target/debug/deps/libdualpar-fab2656c022b3126.rmeta: crates/bench/src/bin/dualpar.rs Cargo.toml

crates/bench/src/bin/dualpar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
