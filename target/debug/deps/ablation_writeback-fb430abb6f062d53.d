/root/repo/target/debug/deps/ablation_writeback-fb430abb6f062d53.d: crates/bench/benches/ablation_writeback.rs

/root/repo/target/debug/deps/ablation_writeback-fb430abb6f062d53: crates/bench/benches/ablation_writeback.rs

crates/bench/benches/ablation_writeback.rs:
