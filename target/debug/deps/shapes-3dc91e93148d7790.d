/root/repo/target/debug/deps/shapes-3dc91e93148d7790.d: tests/tests/shapes.rs

/root/repo/target/debug/deps/shapes-3dc91e93148d7790: tests/tests/shapes.rs

tests/tests/shapes.rs:
