/root/repo/target/debug/deps/dualpar_cache-6027fa740ea87f9d.d: crates/cache/src/lib.rs crates/cache/src/store.rs

/root/repo/target/debug/deps/libdualpar_cache-6027fa740ea87f9d.rlib: crates/cache/src/lib.rs crates/cache/src/store.rs

/root/repo/target/debug/deps/libdualpar_cache-6027fa740ea87f9d.rmeta: crates/cache/src/lib.rs crates/cache/src/store.rs

crates/cache/src/lib.rs:
crates/cache/src/store.rs:
