/root/repo/target/debug/deps/table3_misprefetch-dc237d8c501506ea.d: crates/bench/benches/table3_misprefetch.rs

/root/repo/target/debug/deps/table3_misprefetch-dc237d8c501506ea: crates/bench/benches/table3_misprefetch.rs

crates/bench/benches/table3_misprefetch.rs:
