/root/repo/target/debug/deps/ablation_thresholds-fcff23b916b012bd.d: crates/bench/benches/ablation_thresholds.rs Cargo.toml

/root/repo/target/debug/deps/libablation_thresholds-fcff23b916b012bd.rmeta: crates/bench/benches/ablation_thresholds.rs Cargo.toml

crates/bench/benches/ablation_thresholds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
