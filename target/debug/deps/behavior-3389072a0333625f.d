/root/repo/target/debug/deps/behavior-3389072a0333625f.d: tests/tests/behavior.rs

/root/repo/target/debug/deps/behavior-3389072a0333625f: tests/tests/behavior.rs

tests/tests/behavior.rs:
