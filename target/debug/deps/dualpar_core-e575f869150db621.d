/root/repo/target/debug/deps/dualpar_core-e575f869150db621.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/crm.rs crates/core/src/emc.rs crates/core/src/pec.rs

/root/repo/target/debug/deps/libdualpar_core-e575f869150db621.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/crm.rs crates/core/src/emc.rs crates/core/src/pec.rs

/root/repo/target/debug/deps/libdualpar_core-e575f869150db621.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/crm.rs crates/core/src/emc.rs crates/core/src/pec.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/crm.rs:
crates/core/src/emc.rs:
crates/core/src/pec.rs:
