/root/repo/target/debug/deps/shapes-fbdceed6c6d915ee.d: tests/tests/shapes.rs Cargo.toml

/root/repo/target/debug/deps/libshapes-fbdceed6c6d915ee.rmeta: tests/tests/shapes.rs Cargo.toml

tests/tests/shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
