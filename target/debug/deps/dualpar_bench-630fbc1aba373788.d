/root/repo/target/debug/deps/dualpar_bench-630fbc1aba373788.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/libdualpar_bench-630fbc1aba373788.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/libdualpar_bench-630fbc1aba373788.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
