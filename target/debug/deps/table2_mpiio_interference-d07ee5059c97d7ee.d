/root/repo/target/debug/deps/table2_mpiio_interference-d07ee5059c97d7ee.d: crates/bench/benches/table2_mpiio_interference.rs

/root/repo/target/debug/deps/table2_mpiio_interference-d07ee5059c97d7ee: crates/bench/benches/table2_mpiio_interference.rs

crates/bench/benches/table2_mpiio_interference.rs:
