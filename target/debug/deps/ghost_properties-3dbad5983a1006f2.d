/root/repo/target/debug/deps/ghost_properties-3dbad5983a1006f2.d: crates/core/tests/ghost_properties.rs

/root/repo/target/debug/deps/ghost_properties-3dbad5983a1006f2: crates/core/tests/ghost_properties.rs

crates/core/tests/ghost_properties.rs:
