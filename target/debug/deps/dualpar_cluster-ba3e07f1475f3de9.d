/root/repo/target/debug/deps/dualpar_cluster-ba3e07f1475f3de9.d: crates/cluster/src/lib.rs crates/cluster/src/datadriven.rs crates/cluster/src/engine.rs crates/cluster/src/exec.rs crates/cluster/src/builder.rs crates/cluster/src/config.rs crates/cluster/src/metrics.rs Cargo.toml

/root/repo/target/debug/deps/libdualpar_cluster-ba3e07f1475f3de9.rmeta: crates/cluster/src/lib.rs crates/cluster/src/datadriven.rs crates/cluster/src/engine.rs crates/cluster/src/exec.rs crates/cluster/src/builder.rs crates/cluster/src/config.rs crates/cluster/src/metrics.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/datadriven.rs:
crates/cluster/src/engine.rs:
crates/cluster/src/exec.rs:
crates/cluster/src/builder.rs:
crates/cluster/src/config.rs:
crates/cluster/src/metrics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
