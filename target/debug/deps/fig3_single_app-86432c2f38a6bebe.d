/root/repo/target/debug/deps/fig3_single_app-86432c2f38a6bebe.d: crates/bench/benches/fig3_single_app.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_single_app-86432c2f38a6bebe.rmeta: crates/bench/benches/fig3_single_app.rs Cargo.toml

crates/bench/benches/fig3_single_app.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
