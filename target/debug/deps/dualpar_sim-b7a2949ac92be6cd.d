/root/repo/target/debug/deps/dualpar_sim-b7a2949ac92be6cd.d: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/resource.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libdualpar_sim-b7a2949ac92be6cd.rmeta: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/resource.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs Cargo.toml

crates/simcore/src/lib.rs:
crates/simcore/src/event.rs:
crates/simcore/src/resource.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
