/root/repo/target/debug/deps/dualpar_mpiio-02e97b12529e8db3.d: crates/mpiio/src/lib.rs crates/mpiio/src/access.rs crates/mpiio/src/collective.rs crates/mpiio/src/datatype.rs crates/mpiio/src/ops.rs crates/mpiio/src/sieve.rs

/root/repo/target/debug/deps/dualpar_mpiio-02e97b12529e8db3: crates/mpiio/src/lib.rs crates/mpiio/src/access.rs crates/mpiio/src/collective.rs crates/mpiio/src/datatype.rs crates/mpiio/src/ops.rs crates/mpiio/src/sieve.rs

crates/mpiio/src/lib.rs:
crates/mpiio/src/access.rs:
crates/mpiio/src/collective.rs:
crates/mpiio/src/datatype.rs:
crates/mpiio/src/ops.rs:
crates/mpiio/src/sieve.rs:
