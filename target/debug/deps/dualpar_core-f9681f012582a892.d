/root/repo/target/debug/deps/dualpar_core-f9681f012582a892.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/crm.rs crates/core/src/emc.rs crates/core/src/pec.rs Cargo.toml

/root/repo/target/debug/deps/libdualpar_core-f9681f012582a892.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/crm.rs crates/core/src/emc.rs crates/core/src/pec.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/crm.rs:
crates/core/src/emc.rs:
crates/core/src/pec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
