/root/repo/target/debug/deps/dualpar_workloads-d0f9c029be2a0358.d: crates/workloads/src/lib.rs crates/workloads/src/common.rs crates/workloads/src/replay.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/libdualpar_workloads-d0f9c029be2a0358.rlib: crates/workloads/src/lib.rs crates/workloads/src/common.rs crates/workloads/src/replay.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/libdualpar_workloads-d0f9c029be2a0358.rmeta: crates/workloads/src/lib.rs crates/workloads/src/common.rs crates/workloads/src/replay.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/common.rs:
crates/workloads/src/replay.rs:
crates/workloads/src/suite.rs:
