/root/repo/target/debug/deps/dualpar_bench-102af15278a4de96.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/dualpar_bench-102af15278a4de96: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
