/root/repo/target/debug/deps/dualpar_mpiio-2174dd42569d4eda.d: crates/mpiio/src/lib.rs crates/mpiio/src/access.rs crates/mpiio/src/collective.rs crates/mpiio/src/datatype.rs crates/mpiio/src/ops.rs crates/mpiio/src/sieve.rs Cargo.toml

/root/repo/target/debug/deps/libdualpar_mpiio-2174dd42569d4eda.rmeta: crates/mpiio/src/lib.rs crates/mpiio/src/access.rs crates/mpiio/src/collective.rs crates/mpiio/src/datatype.rs crates/mpiio/src/ops.rs crates/mpiio/src/sieve.rs Cargo.toml

crates/mpiio/src/lib.rs:
crates/mpiio/src/access.rs:
crates/mpiio/src/collective.rs:
crates/mpiio/src/datatype.rs:
crates/mpiio/src/ops.rs:
crates/mpiio/src/sieve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
