/root/repo/target/debug/deps/dualpar_disk-fda5b29c8474926e.d: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/model.rs crates/disk/src/request.rs crates/disk/src/sched/mod.rs crates/disk/src/sched/anticipatory.rs crates/disk/src/sched/cfq.rs crates/disk/src/sched/deadline.rs crates/disk/src/sched/simple.rs crates/disk/src/trace.rs

/root/repo/target/debug/deps/dualpar_disk-fda5b29c8474926e: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/model.rs crates/disk/src/request.rs crates/disk/src/sched/mod.rs crates/disk/src/sched/anticipatory.rs crates/disk/src/sched/cfq.rs crates/disk/src/sched/deadline.rs crates/disk/src/sched/simple.rs crates/disk/src/trace.rs

crates/disk/src/lib.rs:
crates/disk/src/disk.rs:
crates/disk/src/model.rs:
crates/disk/src/request.rs:
crates/disk/src/sched/mod.rs:
crates/disk/src/sched/anticipatory.rs:
crates/disk/src/sched/cfq.rs:
crates/disk/src/sched/deadline.rs:
crates/disk/src/sched/simple.rs:
crates/disk/src/trace.rs:
