/root/repo/target/debug/deps/striping_properties-6f2a42af22a81951.d: crates/pfs/tests/striping_properties.rs Cargo.toml

/root/repo/target/debug/deps/libstriping_properties-6f2a42af22a81951.rmeta: crates/pfs/tests/striping_properties.rs Cargo.toml

crates/pfs/tests/striping_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
