/root/repo/target/debug/deps/dualpar_integration-67f0ec8cea5dc036.d: tests/src/lib.rs

/root/repo/target/debug/deps/dualpar_integration-67f0ec8cea5dc036: tests/src/lib.rs

tests/src/lib.rs:
