/root/repo/target/debug/deps/telemetry-90f6c15e6b25ba39.d: tests/tests/telemetry.rs

/root/repo/target/debug/deps/telemetry-90f6c15e6b25ba39: tests/tests/telemetry.rs

tests/tests/telemetry.rs:
