/root/repo/target/debug/deps/serde-50f73600b60a86e9.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-50f73600b60a86e9.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
