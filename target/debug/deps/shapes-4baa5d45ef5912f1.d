/root/repo/target/debug/deps/shapes-4baa5d45ef5912f1.d: tests/tests/shapes.rs

/root/repo/target/debug/deps/shapes-4baa5d45ef5912f1: tests/tests/shapes.rs

tests/tests/shapes.rs:
