/root/repo/target/debug/deps/dualpar_telemetry-067131a0cf4119d3.d: crates/telemetry/src/lib.rs

/root/repo/target/debug/deps/libdualpar_telemetry-067131a0cf4119d3.rlib: crates/telemetry/src/lib.rs

/root/repo/target/debug/deps/libdualpar_telemetry-067131a0cf4119d3.rmeta: crates/telemetry/src/lib.rs

crates/telemetry/src/lib.rs:
