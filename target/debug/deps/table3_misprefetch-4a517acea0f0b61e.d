/root/repo/target/debug/deps/table3_misprefetch-4a517acea0f0b61e.d: crates/bench/benches/table3_misprefetch.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_misprefetch-4a517acea0f0b61e.rmeta: crates/bench/benches/table3_misprefetch.rs Cargo.toml

crates/bench/benches/table3_misprefetch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
