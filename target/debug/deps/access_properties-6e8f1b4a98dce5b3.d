/root/repo/target/debug/deps/access_properties-6e8f1b4a98dce5b3.d: crates/mpiio/tests/access_properties.rs

/root/repo/target/debug/deps/access_properties-6e8f1b4a98dce5b3: crates/mpiio/tests/access_properties.rs

crates/mpiio/tests/access_properties.rs:
