/root/repo/target/debug/deps/dualpar-e189d3edeed9f742.d: crates/bench/src/bin/dualpar.rs

/root/repo/target/debug/deps/dualpar-e189d3edeed9f742: crates/bench/src/bin/dualpar.rs

crates/bench/src/bin/dualpar.rs:
