/root/repo/target/debug/deps/telemetry-4f87f0f1d70683c9.d: tests/tests/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry-4f87f0f1d70683c9.rmeta: tests/tests/telemetry.rs Cargo.toml

tests/tests/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
