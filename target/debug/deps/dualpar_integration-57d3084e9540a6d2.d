/root/repo/target/debug/deps/dualpar_integration-57d3084e9540a6d2.d: tests/src/lib.rs

/root/repo/target/debug/deps/libdualpar_integration-57d3084e9540a6d2.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libdualpar_integration-57d3084e9540a6d2.rmeta: tests/src/lib.rs

tests/src/lib.rs:
