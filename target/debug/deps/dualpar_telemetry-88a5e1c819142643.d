/root/repo/target/debug/deps/dualpar_telemetry-88a5e1c819142643.d: crates/telemetry/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdualpar_telemetry-88a5e1c819142643.rmeta: crates/telemetry/src/lib.rs Cargo.toml

crates/telemetry/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
