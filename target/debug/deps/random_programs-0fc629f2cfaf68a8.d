/root/repo/target/debug/deps/random_programs-0fc629f2cfaf68a8.d: tests/tests/random_programs.rs

/root/repo/target/debug/deps/random_programs-0fc629f2cfaf68a8: tests/tests/random_programs.rs

tests/tests/random_programs.rs:
