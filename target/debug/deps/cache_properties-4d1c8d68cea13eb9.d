/root/repo/target/debug/deps/cache_properties-4d1c8d68cea13eb9.d: crates/cache/tests/cache_properties.rs

/root/repo/target/debug/deps/cache_properties-4d1c8d68cea13eb9: crates/cache/tests/cache_properties.rs

crates/cache/tests/cache_properties.rs:
