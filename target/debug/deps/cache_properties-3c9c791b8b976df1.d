/root/repo/target/debug/deps/cache_properties-3c9c791b8b976df1.d: crates/cache/tests/cache_properties.rs Cargo.toml

/root/repo/target/debug/deps/libcache_properties-3c9c791b8b976df1.rmeta: crates/cache/tests/cache_properties.rs Cargo.toml

crates/cache/tests/cache_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
