/root/repo/target/debug/deps/fig5_s3asim-af168d2937dfacf5.d: crates/bench/benches/fig5_s3asim.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_s3asim-af168d2937dfacf5.rmeta: crates/bench/benches/fig5_s3asim.rs Cargo.toml

crates/bench/benches/fig5_s3asim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
