/root/repo/target/debug/deps/fig4_btio_concurrent-8d810a21cb38bac1.d: crates/bench/benches/fig4_btio_concurrent.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_btio_concurrent-8d810a21cb38bac1.rmeta: crates/bench/benches/fig4_btio_concurrent.rs Cargo.toml

crates/bench/benches/fig4_btio_concurrent.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
