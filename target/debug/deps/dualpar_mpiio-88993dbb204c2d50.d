/root/repo/target/debug/deps/dualpar_mpiio-88993dbb204c2d50.d: crates/mpiio/src/lib.rs crates/mpiio/src/access.rs crates/mpiio/src/collective.rs crates/mpiio/src/datatype.rs crates/mpiio/src/ops.rs crates/mpiio/src/sieve.rs

/root/repo/target/debug/deps/libdualpar_mpiio-88993dbb204c2d50.rlib: crates/mpiio/src/lib.rs crates/mpiio/src/access.rs crates/mpiio/src/collective.rs crates/mpiio/src/datatype.rs crates/mpiio/src/ops.rs crates/mpiio/src/sieve.rs

/root/repo/target/debug/deps/libdualpar_mpiio-88993dbb204c2d50.rmeta: crates/mpiio/src/lib.rs crates/mpiio/src/access.rs crates/mpiio/src/collective.rs crates/mpiio/src/datatype.rs crates/mpiio/src/ops.rs crates/mpiio/src/sieve.rs

crates/mpiio/src/lib.rs:
crates/mpiio/src/access.rs:
crates/mpiio/src/collective.rs:
crates/mpiio/src/datatype.rs:
crates/mpiio/src/ops.rs:
crates/mpiio/src/sieve.rs:
