/root/repo/target/debug/deps/proptests-d8a77e457b8ac25c.d: crates/simcore/tests/proptests.rs

/root/repo/target/debug/deps/proptests-d8a77e457b8ac25c: crates/simcore/tests/proptests.rs

crates/simcore/tests/proptests.rs:
