/root/repo/target/debug/deps/sim_microbench-44f6059150792f77.d: crates/bench/benches/sim_microbench.rs

/root/repo/target/debug/deps/sim_microbench-44f6059150792f77: crates/bench/benches/sim_microbench.rs

crates/bench/benches/sim_microbench.rs:
