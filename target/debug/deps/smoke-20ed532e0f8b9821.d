/root/repo/target/debug/deps/smoke-20ed532e0f8b9821.d: tests/tests/smoke.rs Cargo.toml

/root/repo/target/debug/deps/libsmoke-20ed532e0f8b9821.rmeta: tests/tests/smoke.rs Cargo.toml

tests/tests/smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
