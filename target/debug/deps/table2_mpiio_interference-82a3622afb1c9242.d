/root/repo/target/debug/deps/table2_mpiio_interference-82a3622afb1c9242.d: crates/bench/benches/table2_mpiio_interference.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_mpiio_interference-82a3622afb1c9242.rmeta: crates/bench/benches/table2_mpiio_interference.rs Cargo.toml

crates/bench/benches/table2_mpiio_interference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
