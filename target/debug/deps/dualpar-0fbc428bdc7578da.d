/root/repo/target/debug/deps/dualpar-0fbc428bdc7578da.d: crates/bench/src/bin/dualpar.rs Cargo.toml

/root/repo/target/debug/deps/libdualpar-0fbc428bdc7578da.rmeta: crates/bench/src/bin/dualpar.rs Cargo.toml

crates/bench/src/bin/dualpar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
