/root/repo/target/debug/deps/behavior-052b02443cb10b19.d: tests/tests/behavior.rs Cargo.toml

/root/repo/target/debug/deps/libbehavior-052b02443cb10b19.rmeta: tests/tests/behavior.rs Cargo.toml

tests/tests/behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
