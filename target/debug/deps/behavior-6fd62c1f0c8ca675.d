/root/repo/target/debug/deps/behavior-6fd62c1f0c8ca675.d: tests/tests/behavior.rs

/root/repo/target/debug/deps/behavior-6fd62c1f0c8ca675: tests/tests/behavior.rs

tests/tests/behavior.rs:
