/root/repo/target/debug/deps/serde_json-f1dcf10c3c0550ee.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-f1dcf10c3c0550ee.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
