/root/repo/target/debug/deps/fig5_s3asim-48ce1128c9b1d4bc.d: crates/bench/benches/fig5_s3asim.rs

/root/repo/target/debug/deps/fig5_s3asim-48ce1128c9b1d4bc: crates/bench/benches/fig5_s3asim.rs

crates/bench/benches/fig5_s3asim.rs:
