/root/repo/target/debug/deps/fig8_cache_size-306affe47220aa72.d: crates/bench/benches/fig8_cache_size.rs

/root/repo/target/debug/deps/fig8_cache_size-306affe47220aa72: crates/bench/benches/fig8_cache_size.rs

crates/bench/benches/fig8_cache_size.rs:
