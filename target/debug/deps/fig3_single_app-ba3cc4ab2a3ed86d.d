/root/repo/target/debug/deps/fig3_single_app-ba3cc4ab2a3ed86d.d: crates/bench/benches/fig3_single_app.rs

/root/repo/target/debug/deps/fig3_single_app-ba3cc4ab2a3ed86d: crates/bench/benches/fig3_single_app.rs

crates/bench/benches/fig3_single_app.rs:
