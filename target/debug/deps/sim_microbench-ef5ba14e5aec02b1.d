/root/repo/target/debug/deps/sim_microbench-ef5ba14e5aec02b1.d: crates/bench/benches/sim_microbench.rs Cargo.toml

/root/repo/target/debug/deps/libsim_microbench-ef5ba14e5aec02b1.rmeta: crates/bench/benches/sim_microbench.rs Cargo.toml

crates/bench/benches/sim_microbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
