/root/repo/target/debug/deps/dualpar_telemetry-4856a14da3231845.d: crates/telemetry/src/lib.rs

/root/repo/target/debug/deps/dualpar_telemetry-4856a14da3231845: crates/telemetry/src/lib.rs

crates/telemetry/src/lib.rs:
