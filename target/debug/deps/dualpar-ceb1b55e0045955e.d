/root/repo/target/debug/deps/dualpar-ceb1b55e0045955e.d: crates/bench/src/bin/dualpar.rs

/root/repo/target/debug/deps/dualpar-ceb1b55e0045955e: crates/bench/src/bin/dualpar.rs

crates/bench/src/bin/dualpar.rs:
