/root/repo/target/release/examples/quickstart-fb837c8f7f1b895b.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-fb837c8f7f1b895b: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
