/root/repo/target/release/libdualpar_integration.rlib: /root/repo/tests/src/lib.rs
