/root/repo/target/release/libdualpar_telemetry.rlib: /root/repo/crates/telemetry/src/lib.rs /root/repo/vendor/serde/src/lib.rs /root/repo/vendor/serde_derive/src/lib.rs
