/root/repo/target/release/deps/serde_json-b94d58a8c4b5dd10.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-b94d58a8c4b5dd10.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-b94d58a8c4b5dd10.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
