/root/repo/target/release/deps/dualpar_cluster-75f1bf1b8c75c7e6.d: crates/cluster/src/lib.rs crates/cluster/src/datadriven.rs crates/cluster/src/engine.rs crates/cluster/src/exec.rs crates/cluster/src/config.rs crates/cluster/src/metrics.rs

/root/repo/target/release/deps/libdualpar_cluster-75f1bf1b8c75c7e6.rlib: crates/cluster/src/lib.rs crates/cluster/src/datadriven.rs crates/cluster/src/engine.rs crates/cluster/src/exec.rs crates/cluster/src/config.rs crates/cluster/src/metrics.rs

/root/repo/target/release/deps/libdualpar_cluster-75f1bf1b8c75c7e6.rmeta: crates/cluster/src/lib.rs crates/cluster/src/datadriven.rs crates/cluster/src/engine.rs crates/cluster/src/exec.rs crates/cluster/src/config.rs crates/cluster/src/metrics.rs

crates/cluster/src/lib.rs:
crates/cluster/src/datadriven.rs:
crates/cluster/src/engine.rs:
crates/cluster/src/exec.rs:
crates/cluster/src/config.rs:
crates/cluster/src/metrics.rs:
