/root/repo/target/release/deps/dualpar-64049d6d03290fe7.d: crates/bench/src/bin/dualpar.rs

/root/repo/target/release/deps/dualpar-64049d6d03290fe7: crates/bench/src/bin/dualpar.rs

crates/bench/src/bin/dualpar.rs:
