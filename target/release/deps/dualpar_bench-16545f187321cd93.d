/root/repo/target/release/deps/dualpar_bench-16545f187321cd93.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/release/deps/libdualpar_bench-16545f187321cd93.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/release/deps/libdualpar_bench-16545f187321cd93.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
