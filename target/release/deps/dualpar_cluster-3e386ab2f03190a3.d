/root/repo/target/release/deps/dualpar_cluster-3e386ab2f03190a3.d: crates/cluster/src/lib.rs crates/cluster/src/datadriven.rs crates/cluster/src/engine.rs crates/cluster/src/exec.rs crates/cluster/src/builder.rs crates/cluster/src/config.rs crates/cluster/src/metrics.rs

/root/repo/target/release/deps/libdualpar_cluster-3e386ab2f03190a3.rlib: crates/cluster/src/lib.rs crates/cluster/src/datadriven.rs crates/cluster/src/engine.rs crates/cluster/src/exec.rs crates/cluster/src/builder.rs crates/cluster/src/config.rs crates/cluster/src/metrics.rs

/root/repo/target/release/deps/libdualpar_cluster-3e386ab2f03190a3.rmeta: crates/cluster/src/lib.rs crates/cluster/src/datadriven.rs crates/cluster/src/engine.rs crates/cluster/src/exec.rs crates/cluster/src/builder.rs crates/cluster/src/config.rs crates/cluster/src/metrics.rs

crates/cluster/src/lib.rs:
crates/cluster/src/datadriven.rs:
crates/cluster/src/engine.rs:
crates/cluster/src/exec.rs:
crates/cluster/src/builder.rs:
crates/cluster/src/config.rs:
crates/cluster/src/metrics.rs:
