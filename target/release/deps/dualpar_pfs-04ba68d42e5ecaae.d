/root/repo/target/release/deps/dualpar_pfs-04ba68d42e5ecaae.d: crates/pfs/src/lib.rs crates/pfs/src/alloc.rs crates/pfs/src/ranges.rs crates/pfs/src/fs.rs crates/pfs/src/layout.rs

/root/repo/target/release/deps/libdualpar_pfs-04ba68d42e5ecaae.rlib: crates/pfs/src/lib.rs crates/pfs/src/alloc.rs crates/pfs/src/ranges.rs crates/pfs/src/fs.rs crates/pfs/src/layout.rs

/root/repo/target/release/deps/libdualpar_pfs-04ba68d42e5ecaae.rmeta: crates/pfs/src/lib.rs crates/pfs/src/alloc.rs crates/pfs/src/ranges.rs crates/pfs/src/fs.rs crates/pfs/src/layout.rs

crates/pfs/src/lib.rs:
crates/pfs/src/alloc.rs:
crates/pfs/src/ranges.rs:
crates/pfs/src/fs.rs:
crates/pfs/src/layout.rs:
