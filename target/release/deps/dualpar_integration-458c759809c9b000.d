/root/repo/target/release/deps/dualpar_integration-458c759809c9b000.d: tests/src/lib.rs

/root/repo/target/release/deps/libdualpar_integration-458c759809c9b000.rlib: tests/src/lib.rs

/root/repo/target/release/deps/libdualpar_integration-458c759809c9b000.rmeta: tests/src/lib.rs

tests/src/lib.rs:
