/root/repo/target/release/deps/dualpar_bench-9d6e199ea36f5a0b.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/release/deps/libdualpar_bench-9d6e199ea36f5a0b.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/release/deps/libdualpar_bench-9d6e199ea36f5a0b.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
