/root/repo/target/release/deps/dualpar_sim-cded524712684c0c.d: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/resource.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/release/deps/libdualpar_sim-cded524712684c0c.rlib: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/resource.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/release/deps/libdualpar_sim-cded524712684c0c.rmeta: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/resource.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/event.rs:
crates/simcore/src/resource.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
