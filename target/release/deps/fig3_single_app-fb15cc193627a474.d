/root/repo/target/release/deps/fig3_single_app-fb15cc193627a474.d: crates/bench/benches/fig3_single_app.rs

/root/repo/target/release/deps/fig3_single_app-fb15cc193627a474: crates/bench/benches/fig3_single_app.rs

crates/bench/benches/fig3_single_app.rs:
