/root/repo/target/release/deps/dualpar_workloads-63edfeb56c613e24.d: crates/workloads/src/lib.rs crates/workloads/src/common.rs crates/workloads/src/replay.rs crates/workloads/src/suite.rs

/root/repo/target/release/deps/libdualpar_workloads-63edfeb56c613e24.rlib: crates/workloads/src/lib.rs crates/workloads/src/common.rs crates/workloads/src/replay.rs crates/workloads/src/suite.rs

/root/repo/target/release/deps/libdualpar_workloads-63edfeb56c613e24.rmeta: crates/workloads/src/lib.rs crates/workloads/src/common.rs crates/workloads/src/replay.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/common.rs:
crates/workloads/src/replay.rs:
crates/workloads/src/suite.rs:
