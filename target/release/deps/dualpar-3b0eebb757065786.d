/root/repo/target/release/deps/dualpar-3b0eebb757065786.d: crates/bench/src/bin/dualpar.rs

/root/repo/target/release/deps/dualpar-3b0eebb757065786: crates/bench/src/bin/dualpar.rs

crates/bench/src/bin/dualpar.rs:
