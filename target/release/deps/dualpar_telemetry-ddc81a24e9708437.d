/root/repo/target/release/deps/dualpar_telemetry-ddc81a24e9708437.d: crates/telemetry/src/lib.rs

/root/repo/target/release/deps/libdualpar_telemetry-ddc81a24e9708437.rlib: crates/telemetry/src/lib.rs

/root/repo/target/release/deps/libdualpar_telemetry-ddc81a24e9708437.rmeta: crates/telemetry/src/lib.rs

crates/telemetry/src/lib.rs:
