/root/repo/target/release/deps/dualpar_disk-2c2c789a65f7d4cc.d: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/model.rs crates/disk/src/request.rs crates/disk/src/sched/mod.rs crates/disk/src/sched/anticipatory.rs crates/disk/src/sched/cfq.rs crates/disk/src/sched/deadline.rs crates/disk/src/sched/simple.rs crates/disk/src/trace.rs

/root/repo/target/release/deps/libdualpar_disk-2c2c789a65f7d4cc.rlib: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/model.rs crates/disk/src/request.rs crates/disk/src/sched/mod.rs crates/disk/src/sched/anticipatory.rs crates/disk/src/sched/cfq.rs crates/disk/src/sched/deadline.rs crates/disk/src/sched/simple.rs crates/disk/src/trace.rs

/root/repo/target/release/deps/libdualpar_disk-2c2c789a65f7d4cc.rmeta: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/model.rs crates/disk/src/request.rs crates/disk/src/sched/mod.rs crates/disk/src/sched/anticipatory.rs crates/disk/src/sched/cfq.rs crates/disk/src/sched/deadline.rs crates/disk/src/sched/simple.rs crates/disk/src/trace.rs

crates/disk/src/lib.rs:
crates/disk/src/disk.rs:
crates/disk/src/model.rs:
crates/disk/src/request.rs:
crates/disk/src/sched/mod.rs:
crates/disk/src/sched/anticipatory.rs:
crates/disk/src/sched/cfq.rs:
crates/disk/src/sched/deadline.rs:
crates/disk/src/sched/simple.rs:
crates/disk/src/trace.rs:
