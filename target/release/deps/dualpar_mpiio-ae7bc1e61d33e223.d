/root/repo/target/release/deps/dualpar_mpiio-ae7bc1e61d33e223.d: crates/mpiio/src/lib.rs crates/mpiio/src/access.rs crates/mpiio/src/collective.rs crates/mpiio/src/datatype.rs crates/mpiio/src/ops.rs crates/mpiio/src/sieve.rs

/root/repo/target/release/deps/libdualpar_mpiio-ae7bc1e61d33e223.rlib: crates/mpiio/src/lib.rs crates/mpiio/src/access.rs crates/mpiio/src/collective.rs crates/mpiio/src/datatype.rs crates/mpiio/src/ops.rs crates/mpiio/src/sieve.rs

/root/repo/target/release/deps/libdualpar_mpiio-ae7bc1e61d33e223.rmeta: crates/mpiio/src/lib.rs crates/mpiio/src/access.rs crates/mpiio/src/collective.rs crates/mpiio/src/datatype.rs crates/mpiio/src/ops.rs crates/mpiio/src/sieve.rs

crates/mpiio/src/lib.rs:
crates/mpiio/src/access.rs:
crates/mpiio/src/collective.rs:
crates/mpiio/src/datatype.rs:
crates/mpiio/src/ops.rs:
crates/mpiio/src/sieve.rs:
