/root/repo/target/release/deps/dualpar_core-505839f37ac11c40.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/crm.rs crates/core/src/emc.rs crates/core/src/pec.rs

/root/repo/target/release/deps/libdualpar_core-505839f37ac11c40.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/crm.rs crates/core/src/emc.rs crates/core/src/pec.rs

/root/repo/target/release/deps/libdualpar_core-505839f37ac11c40.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/crm.rs crates/core/src/emc.rs crates/core/src/pec.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/crm.rs:
crates/core/src/emc.rs:
crates/core/src/pec.rs:
