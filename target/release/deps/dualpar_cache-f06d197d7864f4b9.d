/root/repo/target/release/deps/dualpar_cache-f06d197d7864f4b9.d: crates/cache/src/lib.rs crates/cache/src/store.rs

/root/repo/target/release/deps/libdualpar_cache-f06d197d7864f4b9.rlib: crates/cache/src/lib.rs crates/cache/src/store.rs

/root/repo/target/release/deps/libdualpar_cache-f06d197d7864f4b9.rmeta: crates/cache/src/lib.rs crates/cache/src/store.rs

crates/cache/src/lib.rs:
crates/cache/src/store.rs:
