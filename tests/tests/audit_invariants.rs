//! Audit-driven property tests: random workloads must produce traces with
//! zero invariant violations under every disk scheduler, the prefetch
//! ledger must balance under random cache traffic, and a deliberately
//! corrupted trace must be caught with a structured violation report.

use dualpar_audit::{audit_buffer, audit_jsonl_str, AuditConfig};
use dualpar_cache::{CacheConfig, GlobalCache, OwnerId};
use dualpar_cluster::prelude::*;
use dualpar_disk::SchedulerKind;
use dualpar_pfs::{FileId, FileRegion};
use proptest::prelude::*;

const FILE_SIZE: u64 = 8 << 20;

/// A compact op description the generator shrinks well on (mirrors
/// `random_programs.rs`).
#[derive(Debug, Clone)]
enum GenOp {
    Compute(u32), // microseconds
    Read(u32, u16),
    Write(u32, u16),
    Barrier,
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        (1u32..2_000).prop_map(GenOp::Compute),
        (0u32..1000, 1u16..64).prop_map(|(o, l)| GenOp::Read(o, l)),
        (0u32..1000, 1u16..64).prop_map(|(o, l)| GenOp::Write(o, l)),
        Just(GenOp::Barrier),
    ]
}

fn gen_program() -> impl Strategy<Value = (usize, Vec<Vec<GenOp>>)> {
    (2usize..5).prop_flat_map(|nprocs| {
        let body = proptest::collection::vec(gen_op(), 0..10);
        (
            Just(nprocs),
            proptest::collection::vec(body, nprocs..=nprocs),
        )
    })
}

/// Build consistent rank scripts: barriers renumbered in order, every rank
/// padded to the same barrier sequence, each rank confined to a disjoint
/// slab of the file.
fn build_script(bodies: &[Vec<GenOp>], rank_region: u64) -> ProgramScript {
    let max_barriers = bodies
        .iter()
        .map(|b| b.iter().filter(|o| matches!(o, GenOp::Barrier)).count())
        .max()
        .unwrap_or(0);
    let ranks = bodies
        .iter()
        .enumerate()
        .map(|(rank, body)| {
            let mut ops = Vec::new();
            let mut barrier = 0u64;
            let base = rank as u64 * rank_region;
            for op in body {
                match *op {
                    GenOp::Compute(us) => {
                        ops.push(Op::Compute(SimDuration::from_micros(us as u64)))
                    }
                    GenOp::Read(o, l) => {
                        let len = (l as u64) * 512;
                        let off = base + (o as u64 * 512) % (rank_region - len);
                        ops.push(Op::Io(IoCall::read(
                            FileId(1),
                            vec![FileRegion::new(off, len)],
                        )));
                    }
                    GenOp::Write(o, l) => {
                        let len = (l as u64) * 512;
                        let off = base + (o as u64 * 512) % (rank_region - len);
                        ops.push(Op::Io(IoCall::write(
                            FileId(1),
                            vec![FileRegion::new(off, len)],
                        )));
                    }
                    GenOp::Barrier => {
                        ops.push(Op::Barrier(barrier));
                        barrier += 1;
                    }
                }
            }
            while barrier < max_barriers as u64 {
                ops.push(Op::Barrier(barrier));
                barrier += 1;
            }
            ProcessScript::new(ops)
        })
        .collect();
    ProgramScript {
        name: "random".into(),
        ranks,
    }
}

/// Run a script with trace-level telemetry and return the cluster so the
/// caller can inspect (or export) the in-process ring buffer.
fn traced_run(script: &ProgramScript, strategy: IoStrategy, sched: SchedulerKind) -> Cluster {
    let script = script.clone();
    let mut cluster = Experiment::darwin()
        .servers(3)
        .compute_nodes(2)
        .scheduler(sched)
        .telemetry_config(TelemetryConfig {
            level: TelemetryLevel::Trace,
            trace_capacity: 1 << 20,
            spans: true,
        })
        .file("f", FILE_SIZE)
        .program(strategy, move |files| {
            assert_eq!(files[0], FileId(1));
            script
        })
        .build()
        .expect("valid experiment");
    let report = cluster.run();
    let snap = report.telemetry.expect("telemetry is on");
    assert_eq!(snap.trace_dropped, 0, "trace ring overflowed in test");
    cluster
}

const ALL_SCHEDULERS: [SchedulerKind; 6] = [
    SchedulerKind::Cfq,
    SchedulerKind::Anticipatory,
    SchedulerKind::Noop,
    SchedulerKind::Deadline,
    SchedulerKind::Sstf,
    SchedulerKind::Scan,
];

/// Random cache traffic for the ledger-conservation property.
#[derive(Debug, Clone)]
enum CacheOp {
    Prefetch(u8, u32, u16),
    Write(u8, u32, u16),
    Read(u32, u16),
    EndEpoch(u8),
    EvictIdle,
    Invalidate,
}

fn gen_cache_op() -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        (0u8..3, 0u32..512, 1u16..96).prop_map(|(o, off, l)| CacheOp::Prefetch(o, off, l)),
        (0u8..3, 0u32..512, 1u16..96).prop_map(|(o, off, l)| CacheOp::Write(o, off, l)),
        (0u32..512, 1u16..96).prop_map(|(off, l)| CacheOp::Read(off, l)),
        (0u8..3).prop_map(CacheOp::EndEpoch),
        Just(CacheOp::EvictIdle),
        Just(CacheOp::Invalidate),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every disk scheduler yields a trace the auditor accepts: monotone
    /// time, exclusive per-server disk service, paired PEC suspend/resume,
    /// legal EMC transitions, balanced cache ledger — and, since spans are
    /// on, fully-paired well-nested spans whose request stages appear in
    /// pipeline order (the auditor's span-pairing / span-nesting /
    /// span-stage-order checks).
    #[test]
    fn random_workloads_audit_clean((_nprocs, bodies) in gen_program()) {
        let rank_region = FILE_SIZE / bodies.len() as u64;
        let script = build_script(&bodies, rank_region);
        for sched in ALL_SCHEDULERS {
            let cluster = traced_run(&script, IoStrategy::DualPar, sched);
            // The span property must not pass vacuously: state spans are
            // recorded for every run (request spans need actual I/O).
            prop_assert!(!cluster.telemetry().spans().is_empty());
            prop_assert_eq!(cluster.telemetry().spans().open_count(), 0);
            let report = audit_buffer(cluster.telemetry().trace(), AuditConfig::default());
            prop_assert!(
                report.ok(),
                "audit violations under {sched:?}: {}",
                report.to_json()
            );
        }
        // Forced data-driven mode exercises the PEC/CRM paths even when the
        // adaptive controller would not switch.
        let cluster = traced_run(&script, IoStrategy::DualParForced, SchedulerKind::Cfq);
        let report = audit_buffer(cluster.telemetry().trace(), AuditConfig::default());
        prop_assert!(
            report.ok(),
            "audit violations under forced mode: {}",
            report.to_json()
        );
    }

    /// The prefetch ledger stays balanced — inserted bytes are always fully
    /// accounted as consumed/overwritten/evicted/misprefetched/unused —
    /// under arbitrary interleavings of cache operations.
    #[test]
    fn cache_ledger_conserves_bytes(ops in proptest::collection::vec(gen_cache_op(), 1..80)) {
        let mut cache = GlobalCache::new(CacheConfig {
            num_nodes: 2,
            node_capacity: 1 << 20, // small enough that capacity eviction fires
            idle_ttl: SimDuration::from_secs(1),
            ..CacheConfig::default()
        });
        let file = FileId(1);
        let mut now = SimTime::ZERO;
        for op in &ops {
            now += SimDuration::from_millis(100);
            match *op {
                CacheOp::Prefetch(o, off, l) => {
                    let region = FileRegion::new(off as u64 * 512, l as u64 * 512);
                    cache.put_prefetch(OwnerId(o as u64), file, region, now);
                }
                CacheOp::Write(o, off, l) => {
                    let region = FileRegion::new(off as u64 * 512, l as u64 * 512);
                    cache.put_write(OwnerId(o as u64), file, region, now);
                }
                CacheOp::Read(off, l) => {
                    let region = FileRegion::new(off as u64 * 512, l as u64 * 512);
                    cache.read(file, region, now);
                }
                CacheOp::EndEpoch(o) => {
                    cache.end_prefetch_epoch(OwnerId(o as u64));
                }
                CacheOp::EvictIdle => {
                    // +2s so everything older than idle_ttl is fair game.
                    now += SimDuration::from_secs(2);
                    cache.evict_idle(now);
                }
                CacheOp::Invalidate => {
                    // Invalidation requires write-back first (dropping dirty
                    // data is a documented caller bug).
                    cache.drain_dirty();
                    cache.invalidate(file);
                }
            }
            cache.assert_conservation();
        }
        let ledger = cache.prefetch_ledger();
        prop_assert!(ledger.balanced(), "final ledger unbalanced: {ledger:?}");
    }
}

/// Exports a real trace, corrupts it in two distinct ways, and checks that
/// the auditor rejects both with the right structured findings.
#[test]
fn corrupted_trace_is_rejected() {
    let script = ProgramScript {
        name: "corruptme".into(),
        ranks: (0..4)
            .map(|rank| {
                let base = rank as u64 * (FILE_SIZE / 4);
                ProcessScript::new(vec![
                    Op::Io(IoCall::write(
                        FileId(1),
                        vec![FileRegion::new(base, 256 << 10)],
                    )),
                    Op::Barrier(0),
                    Op::Compute(SimDuration::from_millis(5)),
                    Op::Io(IoCall::read(
                        FileId(1),
                        vec![FileRegion::new(base, 512 << 10)],
                    )),
                ])
            })
            .collect(),
    };
    let cluster = traced_run(&script, IoStrategy::DualParForced, SchedulerKind::Cfq);
    let mut raw = Vec::new();
    cluster.export_trace(&mut raw).expect("export to memory");
    let text = String::from_utf8(raw).expect("trace is UTF-8");

    // Sanity: the pristine trace audits clean.
    let clean = audit_jsonl_str(&text, AuditConfig::default()).expect("pristine trace parses");
    assert!(clean.ok(), "pristine trace has violations: {}", clean.to_json());

    // Corruption 1: duplicate a disk/start line — two requests in flight on
    // one server violates scheduler exclusivity.
    let lines: Vec<&str> = text.lines().collect();
    let start_idx = lines
        .iter()
        .position(|l| l.contains("\"component\":\"disk\",\"kind\":\"start\""))
        .expect("trace contains a disk start");
    let mut dup = lines.clone();
    dup.insert(start_idx + 1, lines[start_idx]);
    let report = audit_jsonl_str(&dup.join("\n"), AuditConfig::default())
        .expect("corrupted trace still parses");
    assert!(!report.ok(), "duplicated disk/start not detected");
    assert!(
        report.violations.iter().any(|v| v.check == "disk-exclusivity"),
        "expected a disk-exclusivity finding, got: {}",
        report.to_json()
    );

    // Corruption 2: swap two lines with distinct timestamps — time runs
    // backwards at the swap point.
    // every line starts `{"t":<number>,` — compare the raw digits
    fn t_of(l: &str) -> &str {
        let rest = &l[5..];
        &rest[..rest.find(',').expect("t is not the only field")]
    }
    let swap_idx = (0..lines.len() - 1)
        .find(|&i| t_of(lines[i]) != t_of(lines[i + 1]))
        .expect("trace spans more than one timestamp");
    let mut swapped = lines.clone();
    swapped.swap(swap_idx, swap_idx + 1);
    let report = audit_jsonl_str(&swapped.join("\n"), AuditConfig::default())
        .expect("swapped trace still parses");
    assert!(!report.ok(), "timestamp regression not detected");
    assert!(
        report.violations.iter().any(|v| v.check == "monotone-time"),
        "expected a monotone-time finding, got: {}",
        report.to_json()
    );

    // The report is machine-readable: structured JSON naming the check and
    // the offending event index.
    let json = report.to_json();
    assert!(json.contains("\"ok\":false"));
    assert!(json.contains("\"check\":\"monotone-time\""));
    assert!(json.contains("\"index\":"));
}
