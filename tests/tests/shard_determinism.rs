//! Byte-identity of the sharded engine: the partition into logical shards
//! is fixed by the cluster topology, and `--shards` only picks where each
//! conservative window executes, so every report, trace, and fingerprint
//! must be bit-identical at every `--shards` level — and independently of
//! `--jobs`, which fans whole runs over the suite pool. The matrix test
//! pins the committed suite entries; the property test holds the same line
//! for arbitrary generated DSL workloads.

use dualpar_bench::suite::{
    report_fingerprint, run_entry, run_entry_sharded, run_suite_entries,
};
use dualpar_bench::{builtin_suite, ExperimentSpec, ProgramEntry, Scale, SuiteEntry, WorkloadSpec};
use dualpar_cluster::{IoStrategy, TelemetryLevel};
use dualpar_workloads::{AccessPattern, DslWorkload, OffsetDistr, SizeDistr, WorkloadExpr};
use proptest::prelude::*;

#[test]
fn reports_and_traces_identical_across_shards_and_jobs() {
    // The fast single-program entries plus the two-program interference
    // pair: one- and multi-program clusters, vanilla and DualPar.
    let mut entries: Vec<_> = builtin_suite(Scale::Small)
        .into_iter()
        .filter(|e| e.name.starts_with("mpiio") || e.name == "interference_pair")
        .collect();
    assert_eq!(entries.len(), 3);
    for e in &mut entries {
        e.spec.cluster.telemetry.level = TelemetryLevel::Trace;
    }
    let baseline = run_suite_entries(&entries, 1, None, 1, 0);
    for jobs in [1usize, 4] {
        for shards in [1usize, 2, 4] {
            if (jobs, shards) == (1, 1) {
                continue;
            }
            let runs = run_suite_entries(&entries, jobs, None, shards, 0);
            for (b, r) in baseline.iter().zip(&runs) {
                let b = b.as_ref().expect("no deadline configured");
                let r = r.as_ref().expect("no deadline configured");
                assert_eq!(b.name, r.name, "result order must match input order");
                assert_eq!(
                    b.report_json, r.report_json,
                    "{}: report differs at jobs={jobs} shards={shards}",
                    b.name
                );
                assert_eq!(
                    b.trace_jsonl, r.trace_jsonl,
                    "{}: trace differs at jobs={jobs} shards={shards}",
                    b.name
                );
                assert_eq!(
                    report_fingerprint(&b.report_json),
                    report_fingerprint(&r.report_json)
                );
            }
        }
    }
}

#[test]
fn oversharding_beyond_the_server_count_is_identical_too() {
    // More shard workers than data servers: the pool clamps to the server
    // count, and the report still must not move a byte.
    let entry = builtin_suite(Scale::Small)
        .into_iter()
        .find(|e| e.name == "hpio_dualpar")
        .expect("suite entry exists");
    let serial = run_entry(&entry);
    let sharded = run_entry_sharded(&entry, 64);
    assert_eq!(serial.report_json, sharded.report_json);
}

// ---------------------------------------------------------------------------
// Property: arbitrary DSL workloads run bit-identically serial vs sharded.

fn gen_pattern() -> impl Strategy<Value = WorkloadExpr> {
    (
        1u64..8,
        prop_oneof![
            Just(SizeDistr::Fixed { bytes: 16384 }),
            Just(SizeDistr::Uniform {
                min: 4096,
                max: 65536,
            }),
        ],
        prop_oneof![
            Just(OffsetDistr::Sequential),
            Just(OffsetDistr::Random),
            Just(OffsetDistr::ZipfHotspot { theta: 0.9 }),
        ],
        0.0f64..1.0,
    )
        .prop_map(|(ops, size, offsets, write_fraction)| {
            WorkloadExpr::Pattern(AccessPattern {
                ops,
                size,
                offsets,
                write_fraction,
                ..AccessPattern::default()
            })
        })
}

fn gen_expr() -> impl Strategy<Value = WorkloadExpr> {
    prop_oneof![
        gen_pattern(),
        proptest::collection::vec(gen_pattern(), 1..3).prop_map(WorkloadExpr::Seq),
        (1u64..3, gen_pattern()).prop_map(|(phases, body)| WorkloadExpr::Phased {
            phases,
            compute_secs: 0.001,
            body: Box::new(body),
        }),
    ]
}

fn gen_workload() -> impl Strategy<Value = DslWorkload> {
    (gen_expr(), 2usize..5, 1u64..1000).prop_map(|(expr, nprocs, seed)| DslWorkload {
        name: "gen".into(),
        nprocs,
        file_size: 4 << 20,
        seed,
        expr,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A random DSL workload produces the same report fingerprint whether
    /// every window runs inline (`shards=1`) or on shard workers.
    #[test]
    fn generated_workloads_fingerprint_identically_serial_vs_sharded(
        workload in gen_workload(),
        dualpar in 0u8..2,
    ) {
        prop_assert!(workload.validate().is_ok());
        let mut spec = ExperimentSpec::default();
        spec.cluster.num_data_servers = 3;
        spec.cluster.num_compute_nodes = 2;
        spec.cluster.telemetry.level = TelemetryLevel::Trace;
        spec.programs = vec![ProgramEntry {
            workload: WorkloadSpec::dsl(workload),
            strategy: if dualpar == 1 { IoStrategy::DualPar } else { IoStrategy::Vanilla },
            start_secs: 0.0,
        }];
        let entry = SuiteEntry::new("gen", spec);
        let serial = run_entry_sharded(&entry, 1);
        let sharded = run_entry_sharded(&entry, 3);
        prop_assert_eq!(
            report_fingerprint(&serial.report_json),
            report_fingerprint(&sharded.report_json)
        );
        prop_assert_eq!(&serial.report_json, &sharded.report_json);
        prop_assert_eq!(&serial.trace_jsonl, &sharded.trace_jsonl);
    }
}
