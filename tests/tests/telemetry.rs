//! Telemetry integration: trace records, counter reconciliation, and
//! series consistency with the engine's own diagnostics.

use dualpar_cluster::prelude::*;
use dualpar_telemetry::FieldValue;
use dualpar_workloads::MpiIoTest;

fn small() -> Experiment {
    Experiment::darwin().servers(3).compute_nodes(2)
}

/// A forced data-driven run must leave its mode decision in the event
/// trace (reason "forced") — and, per the adaptive-strategy contract,
/// NOT in `RunReport::mode_events`, which records only EMC decisions.
#[test]
fn forced_mode_is_traced_but_not_a_mode_event() {
    let w = MpiIoTest {
        nprocs: 4,
        file_size: 8 << 20,
        ..Default::default()
    };
    let mut c = small()
        .telemetry(TelemetryLevel::Trace)
        .file("data", w.file_size)
        .program(IoStrategy::DualParForced, move |files| w.build(files[0]))
        .build()
        .expect("valid experiment");
    let r = c.run();
    let forced: Vec<_> = c
        .telemetry()
        .trace()
        .iter()
        .filter(|ev| {
            ev.component == "emc"
                && ev.kind == "mode"
                && ev
                    .fields
                    .iter()
                    .any(|(k, v)| *k == "reason" && *v == FieldValue::Str("forced".into()))
        })
        .collect();
    assert!(
        !forced.is_empty(),
        "a DualParForced run must emit at least one forced-mode trace record"
    );
    assert!(
        r.mode_events.is_empty(),
        "forced-mode records belong to the trace, not RunReport::mode_events"
    );
}

/// The telemetry "emc.improvement" series must be exactly the improvement
/// signal the engine reports in `RunReport::emc_improvement`.
#[test]
fn traced_improvement_matches_engine_signal() {
    let mut exp = small().telemetry(TelemetryLevel::Counters);
    for i in 0..2usize {
        let w = MpiIoTest {
            nprocs: 8,
            file_size: 24 << 20,
            barrier_every: 8,
            ..Default::default()
        };
        exp = exp
            .file(format!("f{i}"), w.file_size)
            .program(IoStrategy::DualPar, move |files| {
                let mut s = w.build(files[i]);
                s.name = format!("i{i}");
                s
            });
    }
    let r = exp.run().expect("valid experiment");
    assert!(!r.emc_improvement.is_empty());
    let snap = r.telemetry.as_ref().expect("counters enabled");
    let series = snap
        .series
        .get("emc.improvement")
        .expect("emc.improvement series present");
    assert_eq!(
        series, &r.emc_improvement,
        "telemetry series must mirror the engine's improvement signal"
    );
}

/// Telemetry byte counters reconcile with the per-program report totals,
/// in both directions, under the data-driven strategy (which moves bytes
/// through every cache path: buffered writes, prefetch hits, flushes).
#[test]
fn byte_counters_reconcile_with_report() {
    for kind in [IoKind::Read, IoKind::Write] {
        let w = MpiIoTest {
            nprocs: 4,
            file_size: 8 << 20,
            kind,
            barrier_every: 4,
            ..Default::default()
        };
        let r = small()
            .telemetry(TelemetryLevel::Counters)
            .file("data", w.file_size)
            .program(IoStrategy::DualPar, move |files| w.build(files[0]))
            .run()
            .expect("valid experiment");
        let snap = r.telemetry.as_ref().expect("counters enabled");
        let read: u64 = r.programs.iter().map(|p| p.bytes_read).sum();
        let written: u64 = r.programs.iter().map(|p| p.bytes_written).sum();
        assert_eq!(
            snap.counters.get("io.bytes_read").copied().unwrap_or(0),
            read,
            "read counter must equal the program totals"
        );
        assert_eq!(
            snap.counters.get("io.bytes_written").copied().unwrap_or(0),
            written,
            "write counter must equal the program totals"
        );
    }
}

/// An adaptive run under trace-level telemetry exports a JSONL stream
/// containing per-tick EMC records.
#[test]
fn jsonl_export_contains_emc_ticks() {
    let mut exp = small().telemetry(TelemetryLevel::Trace);
    for i in 0..2usize {
        let w = MpiIoTest {
            nprocs: 8,
            file_size: 24 << 20,
            barrier_every: 8,
            ..Default::default()
        };
        exp = exp
            .file(format!("f{i}"), w.file_size)
            .program(IoStrategy::DualPar, move |files| {
                let mut s = w.build(files[i]);
                s.name = format!("i{i}");
                s
            });
    }
    let mut c = exp.build().expect("valid experiment");
    let _ = c.run();
    let mut out = Vec::new();
    c.export_trace(&mut out).expect("export succeeds");
    let text = String::from_utf8(out).expect("trace is UTF-8");
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "trace must not be empty");
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}') && line.contains("\"t\":"),
            "every line must be a flat JSON object: {line}"
        );
    }
    assert!(
        lines
            .iter()
            .any(|l| l.contains("\"component\":\"emc\"") && l.contains("\"kind\":\"tick\"")),
        "trace must contain EMC tick records"
    );
}

/// Counters-level runs keep the trace ring empty (events are trace-only),
/// and off-level runs produce no snapshot at all.
#[test]
fn levels_gate_what_is_recorded() {
    let run = |level: TelemetryLevel| {
        let w = MpiIoTest {
            nprocs: 4,
            file_size: 4 << 20,
            ..Default::default()
        };
        small()
            .telemetry(level)
            .file("data", w.file_size)
            .program(IoStrategy::DualParForced, move |files| w.build(files[0]))
            .run()
            .expect("valid experiment")
    };
    assert!(run(TelemetryLevel::Off).telemetry.is_none());
    let counters = run(TelemetryLevel::Counters);
    let snap = counters.telemetry.expect("counters-level snapshot");
    assert_eq!(snap.trace_events, 0, "no events below Trace level");
    assert!(!snap.counters.is_empty());
    let trace = run(TelemetryLevel::Trace);
    assert!(trace.telemetry.expect("trace-level snapshot").trace_events > 0);
}
