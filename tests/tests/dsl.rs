//! Workload-DSL integration tests: generated expression trees must
//! validate, build, and run byte-identically at any `--jobs` level; the
//! committed example specs must keep parsing (v0 included); and the
//! committed multi-tenant golden must reproduce exactly.

use dualpar_bench::{build_cluster, run_parallel, ExperimentSpec, SuiteEntry, SPEC_VERSION};
use dualpar_cluster::{IoStrategy, TelemetryLevel};
use dualpar_workloads::{
    AccessPattern, DslWorkload, OffsetDistr, SizeDistr, WorkloadExpr,
};
use proptest::prelude::*;
use std::path::PathBuf;

/// `examples/specs/` relative to this crate's manifest.
fn specs_dir() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.push("examples");
    p.push("specs");
    p
}

fn read_spec(name: &str) -> String {
    let path = specs_dir().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"))
}

// ---------------------------------------------------------------------------
// Generators: bounded-depth expression trees over all leaf distributions.

fn gen_pattern() -> impl Strategy<Value = WorkloadExpr> {
    (
        1u64..6,
        prop_oneof![
            Just(SizeDistr::Fixed { bytes: 16384 }),
            Just(SizeDistr::Uniform {
                min: 4096,
                max: 32768,
            }),
            Just(SizeDistr::Bimodal {
                small: 4096,
                large: 65536,
                large_fraction: 0.25,
            }),
        ],
        prop_oneof![
            Just(OffsetDistr::Sequential),
            Just(OffsetDistr::Strided { stride: 131072 }),
            Just(OffsetDistr::Random),
            Just(OffsetDistr::ZipfHotspot { theta: 0.9 }),
        ],
        0.0f64..1.0,
        0u64..3,
    )
        .prop_map(|(ops, size, offsets, write_fraction, barrier_every)| {
            WorkloadExpr::Pattern(AccessPattern {
                ops,
                size,
                offsets,
                write_fraction,
                barrier_every,
                ..AccessPattern::default()
            })
        })
}

/// Any expression of depth at most `depth` (leaves only at depth 1).
fn gen_expr(depth: u32) -> BoxedStrategy<WorkloadExpr> {
    if depth <= 1 {
        return gen_pattern().boxed();
    }
    let child = gen_expr(depth - 1);
    prop_oneof![
        gen_pattern(),
        proptest::collection::vec(gen_expr(depth - 1), 1..3).prop_map(WorkloadExpr::Seq),
        proptest::collection::vec(gen_expr(depth - 1), 1..3).prop_map(WorkloadExpr::Interleave),
        (1u64..3, gen_expr(depth - 1)).prop_map(|(times, body)| WorkloadExpr::Repeat {
            times,
            body: Box::new(body),
        }),
        (1u64..3, gen_expr(depth - 1)).prop_map(|(phases, body)| WorkloadExpr::Phased {
            phases,
            compute_secs: 0.001,
            body: Box::new(body),
        }),
        child.prop_map(|body| WorkloadExpr::Scaled {
            factor: 1.5,
            body: Box::new(body),
        }),
    ]
    .boxed()
}

fn gen_workload() -> impl Strategy<Value = DslWorkload> {
    (gen_expr(3), 2usize..5, 1u64..1000).prop_map(|(expr, nprocs, seed)| DslWorkload {
        name: "gen".into(),
        nprocs,
        file_size: 4 << 20,
        seed,
        expr,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any bounded-depth expression validates, builds, and produces
    /// byte-identical suite reports whether the runner uses one worker
    /// thread or four.
    #[test]
    fn generated_expressions_run_identically_at_any_jobs_level(
        workloads in proptest::collection::vec(gen_workload(), 2..4),
        strategy_toggle in proptest::collection::vec(0u8..2, 2..4),
    ) {
        let entries: Vec<SuiteEntry> = workloads
            .iter()
            .enumerate()
            .map(|(i, w)| {
                prop_assert!(w.validate().is_ok(), "generated workload must validate");
                let strategy = if strategy_toggle[i % strategy_toggle.len()] == 0 {
                    IoStrategy::Vanilla
                } else {
                    IoStrategy::DualPar
                };
                let mut spec = ExperimentSpec {
                    programs: vec![],
                    ..ExperimentSpec::default()
                };
                spec.cluster.num_data_servers = 3;
                spec.cluster.num_compute_nodes = 2;
                spec.programs.push(dualpar_bench::ProgramEntry {
                    workload: dualpar_bench::WorkloadSpec::dsl(w.clone()),
                    strategy,
                    start_secs: 0.0,
                });
                SuiteEntry::new(format!("gen-{i}"), spec)
            })
            .collect();

        let serial = run_parallel(&entries, 1);
        let parallel = run_parallel(&entries, 4);
        for (s, p) in serial.iter().zip(&parallel) {
            prop_assert!(!s.report.programs.is_empty());
            prop_assert_eq!(&s.report_json, &p.report_json, "{} diverged", s.name);
        }
    }
}

// ---------------------------------------------------------------------------
// Committed example specs.

/// Every committed spec parses, upgrades to the current schema, validates,
/// and survives a serialize → parse → serialize round trip.
#[test]
fn committed_specs_round_trip() {
    let dir = specs_dir();
    let mut checked = 0;
    let mut names: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {dir:?}: {e}"))
        .map(|e| e.expect("dir entry").file_name().into_string().expect("utf-8 name"))
        .filter(|n| n.ends_with(".json"))
        .collect();
    names.sort();
    for name in names {
        let spec = ExperimentSpec::from_json(&read_spec(&name))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(spec.version, SPEC_VERSION, "{name}: upgrade must stamp");
        let json = serde_json::to_string_pretty(&spec).expect("serialise");
        let back = ExperimentSpec::from_json(&json).unwrap_or_else(|e| panic!("{name} reparse: {e}"));
        let json2 = serde_json::to_string_pretty(&back).expect("serialise");
        assert_eq!(json, json2, "{name}: round trip must be a fixed point");
        checked += 1;
    }
    assert!(checked >= 3, "expected the committed example specs, found {checked}");
}

/// The v0-format specs (no `version` field, closed-enum-era tags) load,
/// migrate, and still build runnable clusters — the paper figures rerun
/// unchanged through the redesigned WorkloadSpec.
#[test]
fn v0_specs_migrate_and_run() {
    for name in ["quickstart_v0.json", "interference_v0.json"] {
        let raw = read_spec(name);
        assert!(
            !raw.contains("\"version\""),
            "{name} must stay a v0 document"
        );
        let spec = ExperimentSpec::from_json(&raw).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(spec.version, SPEC_VERSION);
        let report = build_cluster(&spec).run();
        assert_eq!(report.programs.len(), spec.programs.len());
        for p in &report.programs {
            assert!(p.bytes_read + p.bytes_written > 0, "{name}: {} moved no bytes", p.name);
        }
    }
}

/// The committed multi-tenant golden (3 tenant classes, Zipf-hotspot
/// offsets, Poisson arrivals) reproduces byte-for-byte: same spec, same
/// seeds, same report — including embedded trace counters.
#[test]
fn multitenant_golden_reproduces() {
    let mut spec = ExperimentSpec::from_json(&read_spec("multitenant.json")).expect("parse");
    // scripts/check.sh records the golden with `--trace`, which forces
    // trace-level telemetry before the run; mirror that here.
    spec.cluster.telemetry.level = TelemetryLevel::Trace;
    let report = build_cluster(&spec).run();
    let got = format!(
        "{}\n",
        serde_json::to_string_pretty(&report).expect("serialise report")
    );

    let mut golden_path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    golden_path.pop();
    golden_path.push("bench_results");
    golden_path.push("GOLDEN_dsl_multitenant.json");
    let want = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("read {golden_path:?}: {e}"));
    assert_eq!(
        got, want,
        "multitenant run drifted from the committed golden; regenerate with\n\
         cargo run --release -p dualpar-bench --bin dualpar -- \\\n\
             examples/specs/multitenant.json --trace /dev/null \\\n\
             > bench_results/GOLDEN_dsl_multitenant.json"
    );

    // The scenario really is multi-tenant and open-loop: more programs ran
    // than were listed closed-loop, and at least three distinct names.
    assert!(report.programs.len() >= 4);
    let mut names: Vec<&str> = report.programs.iter().map(|p| p.name.as_str()).collect();
    names.dedup();
    assert!(names.len() >= 3, "expected >=3 tenant classes, got {names:?}");
}
