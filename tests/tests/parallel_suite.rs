//! Cross-crate tests of the parallel suite runner: fanning independent
//! simulations over a worker pool must not perturb a single bit of any
//! run's serialized report or event trace, and traces produced on worker
//! threads must pass the full invariant audit exactly like serial ones.

use dualpar_audit::{audit_jsonl_str, AuditConfig};
use dualpar_bench::suite::{builtin_suite, run_entry, run_parallel, summarize, Scale};
use dualpar_cluster::TelemetryLevel;

/// The small-scale built-in suite with trace-level telemetry switched on,
/// so every run also captures its JSONL event trace in memory.
fn traced_small_suite() -> Vec<dualpar_bench::SuiteEntry> {
    let mut entries = builtin_suite(Scale::Small);
    for e in &mut entries {
        e.spec.cluster.telemetry.level = TelemetryLevel::Trace;
    }
    entries
}

#[test]
fn suite_reports_and_traces_identical_across_jobs() {
    // Keep the runtime in check: the three fastest single-program entries
    // plus the two-program interference pair cover one- and multi-program
    // clusters.
    let entries: Vec<_> = traced_small_suite()
        .into_iter()
        .filter(|e| {
            e.name.starts_with("mpiio")
                || e.name.starts_with("noncontig")
                || e.name == "interference_pair"
        })
        .collect();
    assert_eq!(entries.len(), 5);
    let serial = run_parallel(&entries, 1);
    let pooled = run_parallel(&entries, 4);
    for (s, p) in serial.iter().zip(&pooled) {
        assert_eq!(s.name, p.name, "result order must match input order");
        assert_eq!(
            s.report_json, p.report_json,
            "{}: serialized report differs between jobs=1 and jobs=4",
            s.name
        );
        let st = s.trace_jsonl.as_ref().expect("serial trace captured");
        let pt = p.trace_jsonl.as_ref().expect("pooled trace captured");
        assert!(!st.is_empty(), "{}: trace must not be empty", s.name);
        assert_eq!(
            st, pt,
            "{}: event trace differs between jobs=1 and jobs=4",
            s.name
        );
    }
    // The summary's determinism-bearing fields must agree too; only the
    // wall-clock measurements may differ between the two passes.
    let a = summarize(&serial, 1, 1.0);
    let b = summarize(&pooled, 4, 1.0);
    for (ra, rb) in a.runs.iter().zip(&b.runs) {
        assert_eq!(ra.report_fingerprint, rb.report_fingerprint);
        assert_eq!(ra.sim_events, rb.sim_events);
        assert_eq!(ra.sim_end_secs, rb.sim_end_secs);
    }
}

#[test]
fn worker_thread_trace_passes_interference_audit() {
    // The interference pair is the audit's richest input: two DualPar
    // programs share the cluster, so the trace exercises mode switches,
    // prefetch accounting, and cross-program completion groups. Produce it
    // on a pool worker (jobs > 1) and hold it to the same standard as any
    // serially produced trace. (btio_vanilla is excluded: its ~2.6M events
    // overflow the 64Ki-event trace ring, and a truncated ring legitimately
    // shows completions whose dispatches were evicted.)
    let entries: Vec<_> = traced_small_suite()
        .into_iter()
        .filter(|e| {
            e.name == "interference_pair" || e.name == "btio_dualpar" || e.name == "hpio_vanilla"
        })
        .collect();
    assert_eq!(entries.len(), 3);
    let runs = run_parallel(&entries, entries.len());
    for run in &runs {
        let trace = run.trace_jsonl.as_ref().expect("trace captured");
        let report = audit_jsonl_str(trace, AuditConfig::default())
            .unwrap_or_else(|e| panic!("{}: trace failed to parse: {e:?}", run.name));
        assert!(report.events > 0, "{}: audited zero events", run.name);
        assert!(
            report.ok(),
            "{}: worker-thread trace violates invariants: {:?}",
            run.name,
            report.violations
        );
    }
}

#[test]
fn truncated_ring_trace_passes_audit_with_tolerance() {
    // Since the engine was sharded, each data server records disk events
    // into its own ring, so a ring overrun evicts whole start/done pairs
    // per server and the surviving suffix is still pair-consistent — the
    // classic truncation artifact (a completion whose dispatch was
    // evicted) can no longer be produced by overrun alone. Construct that
    // dropped-prefix artifact directly: cut the captured trace so it
    // begins at its final `disk/done`, orphaning exactly one completion.
    // The default audit rightly rejects it; the truncation-tolerant audit
    // must accept it, counting the orphaned pairing as a warning instead.
    let entries: Vec<_> = traced_small_suite()
        .into_iter()
        .filter(|e| e.name.starts_with("mpiio"))
        .take(1)
        .collect();
    assert_eq!(entries.len(), 1);
    let run = run_entry(&entries[0]);
    let full = run.trace_jsonl.as_ref().expect("trace captured");
    let cut = full
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains("\"component\":\"disk\"") && l.contains("\"kind\":\"done\""))
        .map(|(i, _)| i)
        .last()
        .expect("trace contains a disk completion");
    let trace: String = full
        .lines()
        .skip(cut)
        .map(|l| format!("{l}\n"))
        .collect();
    let strict = audit_jsonl_str(&trace, AuditConfig::default()).expect("trace parses");
    assert!(
        !strict.ok(),
        "expected the truncated ring to trip the strict audit"
    );
    let tolerant_cfg = AuditConfig {
        tolerate_truncation: true,
        ..AuditConfig::default()
    };
    let tolerant = audit_jsonl_str(&trace, tolerant_cfg).expect("trace parses");
    assert!(
        tolerant.ok(),
        "tolerant audit still found violations: {:?}",
        tolerant.violations
    );
    assert!(
        tolerant.warnings > 0,
        "truncated prefix should surface as counted warnings"
    );
    assert_eq!(strict.violations.len(), tolerant.warnings);
}

#[test]
fn run_entry_matches_pooled_twin_for_every_small_entry() {
    // Full small suite, one pooled pass against per-entry serial twins:
    // the exact check `dualpar suite --verify-serial` performs.
    let entries = builtin_suite(Scale::Small);
    let pooled = run_parallel(&entries, 4);
    for (entry, run) in entries.iter().zip(&pooled) {
        let twin = run_entry(entry);
        assert_eq!(
            twin.report_json, run.report_json,
            "{}: pooled run diverged from its serial twin",
            entry.name
        );
    }
}
