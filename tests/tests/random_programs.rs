//! Whole-system property tests: randomly generated programs must run to
//! completion under every strategy, move exactly the bytes their scripts
//! describe, and behave bit-identically across repeated runs.

use dualpar_cluster::prelude::*;
use proptest::prelude::*;

const FILE_SIZE: u64 = 8 << 20;

/// A compact op description the generator shrinks well on.
#[derive(Debug, Clone)]
enum GenOp {
    Compute(u32),          // microseconds
    Read(u32, u16),        // (offset bucket, length in 512B units)
    Write(u32, u16),
    Barrier,
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        (1u32..2_000).prop_map(GenOp::Compute),
        (0u32..1000, 1u16..64).prop_map(|(o, l)| GenOp::Read(o, l)),
        (0u32..1000, 1u16..64).prop_map(|(o, l)| GenOp::Write(o, l)),
        Just(GenOp::Barrier),
    ]
}

fn gen_program() -> impl Strategy<Value = (usize, Vec<Vec<GenOp>>)> {
    (2usize..6).prop_flat_map(|nprocs| {
        // Per-rank bodies; barriers must appear in the same count per rank,
        // so generate a shared barrier skeleton plus per-rank filler.
        let body = proptest::collection::vec(gen_op(), 0..12);
        (
            Just(nprocs),
            proptest::collection::vec(body, nprocs..=nprocs),
        )
    })
}

/// Build consistent rank scripts: barriers are renumbered in order and
/// padded so every rank sees the same barrier sequence.
fn build_script(_nprocs: usize, bodies: &[Vec<GenOp>], rank_region: u64) -> ProgramScript {
    let max_barriers = bodies
        .iter()
        .map(|b| b.iter().filter(|o| matches!(o, GenOp::Barrier)).count())
        .max()
        .unwrap_or(0);
    let ranks = bodies
        .iter()
        .enumerate()
        .map(|(rank, body)| {
            let mut ops = Vec::new();
            let mut barrier = 0u64;
            // Each rank owns a disjoint slab of the file so writes never
            // race reads of other ranks.
            let base = rank as u64 * rank_region;
            for op in body {
                match *op {
                    GenOp::Compute(us) => {
                        ops.push(Op::Compute(SimDuration::from_micros(us as u64)))
                    }
                    GenOp::Read(o, l) => {
                        let len = (l as u64) * 512;
                        let off = base + (o as u64 * 512) % (rank_region - len);
                        ops.push(Op::Io(IoCall::read(
                            dualpar_pfs::FileId(1),
                            vec![FileRegion::new(off, len)],
                        )));
                    }
                    GenOp::Write(o, l) => {
                        let len = (l as u64) * 512;
                        let off = base + (o as u64 * 512) % (rank_region - len);
                        ops.push(Op::Io(IoCall::write(
                            dualpar_pfs::FileId(1),
                            vec![FileRegion::new(off, len)],
                        )));
                    }
                    GenOp::Barrier => {
                        ops.push(Op::Barrier(barrier));
                        barrier += 1;
                    }
                }
            }
            // Pad so all ranks hit the same number of barriers.
            while barrier < max_barriers as u64 {
                ops.push(Op::Barrier(barrier));
                barrier += 1;
            }
            ProcessScript::new(ops)
        })
        .collect();
    ProgramScript {
        name: "random".into(),
        ranks,
    }
}

fn run(script: &ProgramScript, strategy: IoStrategy) -> RunReport {
    let script = script.clone();
    Experiment::darwin()
        .servers(3)
        .compute_nodes(2)
        .file("f", FILE_SIZE)
        .program(strategy, move |files| {
            // Scripts are generated against FileId(1), the first created file.
            assert_eq!(files[0], FileId(1));
            script
        })
        .run()
        .expect("valid experiment")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every strategy completes any well-formed program and accounts for
    /// exactly the scripted bytes.
    #[test]
    fn all_strategies_conserve_bytes((nprocs, bodies) in gen_program()) {
        let rank_region = FILE_SIZE / nprocs as u64;
        let script = build_script(nprocs, &bodies, rank_region);
        let mut expect_read = 0u64;
        let mut expect_write = 0u64;
        for r in &script.ranks {
            for op in &r.ops {
                if let Op::Io(c) = op {
                    match c.kind {
                        IoKind::Read => expect_read += c.bytes(),
                        IoKind::Write => expect_write += c.bytes(),
                    }
                }
            }
        }
        for strategy in [
            IoStrategy::Vanilla,
            IoStrategy::PrefetchOverlap,
            IoStrategy::DualParForced,
            IoStrategy::DualPar,
        ] {
            let r = run(&script, strategy);
            let p = &r.programs[0];
            prop_assert_eq!(
                p.bytes_read, expect_read,
                "read bytes mismatch under {}", strategy.label()
            );
            prop_assert_eq!(
                p.bytes_written, expect_write,
                "write bytes mismatch under {}", strategy.label()
            );
            prop_assert!(p.finish >= p.start);
        }
    }

    /// Simulations are deterministic: identical runs give identical
    /// reports, for every strategy.
    #[test]
    fn runs_are_deterministic((nprocs, bodies) in gen_program()) {
        let rank_region = FILE_SIZE / nprocs as u64;
        let script = build_script(nprocs, &bodies, rank_region);
        for strategy in [
            IoStrategy::Vanilla,
            IoStrategy::PrefetchOverlap,
            IoStrategy::DualParForced,
        ] {
            let a = run(&script, strategy);
            let b = run(&script, strategy);
            prop_assert_eq!(a.sim_end, b.sim_end, "{}", strategy.label());
            prop_assert_eq!(a.events_processed, b.events_processed);
            prop_assert_eq!(a.programs[0].io_time, b.programs[0].io_time);
        }
    }
}
