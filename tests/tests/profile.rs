//! Span-profile golden tests: the time-attribution profile is a pure
//! function of the experiment spec — byte-identical across repeat runs and
//! `--jobs` levels — and structurally sound (states cover the makespan,
//! stages appear with sane quantiles, the critical path reaches t=0, the
//! folded rendering parses as flamegraph-collapsed stacks).

use dualpar_bench::suite::{builtin_suite, run_parallel, Scale, SuiteEntry};
use dualpar_cluster::{folded, RunReport, SpanProfile, TelemetryLevel};

/// The two profiled fixtures: the quickstart workload (single DualPar
/// mpi-io-test) and the two-program interference pair.
fn profiled_entries() -> Vec<SuiteEntry> {
    let mut entries: Vec<SuiteEntry> = builtin_suite(Scale::Small)
        .into_iter()
        .filter(|e| e.name == "mpiio_dualpar" || e.name == "interference_pair")
        .collect();
    assert_eq!(entries.len(), 2, "suite fixtures renamed?");
    for e in &mut entries {
        // Spans are inert below Counters (the all-off fast path stays
        // untouched), so profiling raises the level too.
        e.spec.cluster.telemetry.spans = true;
        e.spec.cluster.telemetry.level = TelemetryLevel::Counters;
    }
    entries
}

#[test]
fn span_profile_is_byte_identical_across_jobs() {
    let entries = profiled_entries();
    let serial = run_parallel(&entries, 1);
    let pooled = run_parallel(&entries, 4);
    for (a, b) in serial.iter().zip(&pooled) {
        assert!(
            a.report.span_profile.is_some(),
            "{}: spans were enabled but no profile was built",
            a.name
        );
        assert_eq!(
            a.report_json, b.report_json,
            "{}: profile differs between --jobs 1 and --jobs 4",
            a.name
        );
    }
}

/// Shared structural checks for one profiled report.
fn check_profile(name: &str, report: &RunReport) -> SpanProfile {
    let profile = report.span_profile.clone().expect("spans on");
    assert_eq!(profile.spans_open, 0, "{name}: unclosed spans");
    assert!(profile.spans_total > 0, "{name}: empty span log");
    assert!(profile.makespan > 0.0);
    // Every program rank gets a time-in-state row, labelled p<prog>/r<rank>.
    let nprocs: usize = report.programs.iter().map(|p| p.nprocs).sum();
    assert_eq!(profile.time_in_state.len(), nprocs);
    for (prog, p) in report.programs.iter().enumerate() {
        for rank in 0..p.nprocs {
            let label = format!("p{prog}/r{rank}");
            assert!(
                profile.time_in_state.iter().any(|r| r.label == label),
                "{name}: missing row {label}"
            );
        }
    }
    for row in &profile.time_in_state {
        for (state, secs) in &row.seconds {
            assert!(
                *secs >= 0.0 && *secs <= profile.makespan + 1e-9,
                "{name}: {} spends {secs}s in {state} over a {}s makespan",
                row.label,
                profile.makespan
            );
        }
    }
    // The full read lifecycle shows up, and quantiles are ordered.
    for stage in ["req.life", "req.issue", "server.queue", "disk.service", "req.ack"] {
        let h = profile
            .stage_latency
            .get(stage)
            .unwrap_or_else(|| panic!("{name}: stage {stage} missing"));
        assert!(h.count > 0);
        assert!(h.p50 <= h.p90 && h.p90 <= h.p99 && h.p99 <= h.max + 1e-12);
    }
    // The critical path starts at the latest finish and walks back toward
    // t = 0 (it may stop early only at the 256-hop cap).
    let path = &profile.critical_path;
    assert!(!path.is_empty(), "{name}: empty critical path");
    assert!(path[0].close > 0.0);
    assert!(
        path.last().unwrap().open == 0.0 || path.len() == 256,
        "{name}: path stops at t={} after {} hops",
        path.last().unwrap().open,
        path.len()
    );
    for hop in path.windows(2) {
        assert!(hop[1].close <= hop[0].open + 1e-12, "{name}: path not decreasing");
    }
    profile
}

#[test]
fn span_profile_structure_is_sound() {
    let runs = run_parallel(&profiled_entries(), 1);
    for run in &runs {
        check_profile(&run.name, &run.report);
    }
}

#[test]
fn folded_output_renders_collapsed_stacks() {
    let mut entries = profiled_entries();
    entries.truncate(1); // quickstart fixture is enough
    let entry = &entries[0];
    let mut cluster = dualpar_bench::build_cluster(&entry.spec);
    cluster.run();
    let text = folded(cluster.telemetry().spans());
    assert!(!text.is_empty());
    let mut saw_child = false;
    for line in text.lines() {
        // `name(;name)* <integer-microseconds>` — what flamegraph.pl and
        // inferno consume.
        let (stack, weight) = line.rsplit_once(' ').expect("stack and weight");
        assert!(weight.parse::<u64>().is_ok(), "bad weight in {line:?}");
        assert!(weight.parse::<u64>().unwrap() > 0, "zero-weight line {line:?}");
        assert!(!stack.is_empty());
        for frame in stack.split(';') {
            assert!(!frame.is_empty(), "empty frame in {line:?}");
            assert!(!frame.contains(' '), "space inside frame in {line:?}");
        }
        saw_child |= stack.contains(';');
    }
    assert!(saw_child, "no parent;child stack in folded output:\n{text}");
}
