//! Lint-engine integration tests: the fixture corpus under
//! `tests/lint_corpus/`, a lexer span round-trip property, and the
//! workspace gate itself (the real tree must lint clean with the
//! checked-in allow-list — the same bar `scripts/check.sh` enforces).

use dualpar_audit::lexer::{lex, TokKind};
use dualpar_audit::lint::{lint_workspace, scan_file, AllowList};
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("lint_corpus")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("tests crate lives under the workspace root")
        .to_path_buf()
}

/// Parse a `.expected` manifest: optional `flags: hot` header, then
/// `line rule` per line; `#` comments and blanks ignored.
fn parse_expected(text: &str) -> (bool, Vec<(u32, String)>) {
    let mut hot = false;
    let mut expected = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(flags) = line.strip_prefix("flags:") {
            hot = flags.split_whitespace().any(|f| f == "hot");
            continue;
        }
        let mut parts = line.split_whitespace();
        let lineno: u32 = parts
            .next()
            .expect("manifest line starts with a line number")
            .parse()
            .expect("line number parses");
        let rule = parts.next().expect("manifest line names a rule");
        expected.push((lineno, rule.to_string()));
    }
    (hot, expected)
}

#[test]
fn corpus_fixtures_produce_exactly_the_expected_findings() {
    let dir = corpus_dir();
    let mut fixtures: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("lint_corpus directory exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    fixtures.sort();
    assert!(
        fixtures.len() >= 14,
        "corpus should cover every rule (found {})",
        fixtures.len()
    );
    for fixture in fixtures {
        let src = fs::read_to_string(&fixture).expect("fixture readable");
        let manifest = fixture.with_extension("expected");
        let (hot, expected) = parse_expected(
            &fs::read_to_string(&manifest)
                .unwrap_or_else(|e| panic!("{} missing: {e}", manifest.display())),
        );
        let scan = scan_file(&fixture, &src, hot);
        let got: Vec<(u32, String)> = scan
            .findings
            .iter()
            .map(|f| (f.line, f.rule.to_string()))
            .collect();
        assert_eq!(
            got,
            expected,
            "fixture {} findings diverge:\n{}",
            fixture.display(),
            scan.findings
                .iter()
                .map(|f| f.render())
                .collect::<Vec<_>>()
                .join("\n")
        );
        // Fixtures with an `.emits` manifest also pin the trace-emit
        // extraction: `line component kind` per line.
        let emits_manifest = fixture.with_extension("emits");
        if let Ok(text) = fs::read_to_string(&emits_manifest) {
            let expected_emits: Vec<(u32, String, String)> = text
                .lines()
                .filter(|l| !l.trim().is_empty())
                .map(|l| {
                    let mut p = l.split_whitespace();
                    (
                        p.next().unwrap().parse().unwrap(),
                        p.next().unwrap().to_string(),
                        p.next().unwrap().to_string(),
                    )
                })
                .collect();
            let got_emits: Vec<(u32, String, String)> = scan
                .emits
                .iter()
                .map(|e| (e.line, e.component.clone(), e.kind.clone()))
                .collect();
            assert_eq!(got_emits, expected_emits, "fixture {}", fixture.display());
        }
    }
}

#[test]
fn workspace_lints_clean_with_checked_in_allowlist() {
    let root = workspace_root();
    let mut allow = AllowList::load(&root.join("scripts/lint-allow.txt"))
        .expect("allow-list loads");
    let report = lint_workspace(&root, &mut allow, 2).expect("workspace walk succeeds");
    let rendered: Vec<String> = report.findings.iter().map(|f| f.render()).collect();
    assert_eq!(
        report.deny(),
        0,
        "deny findings in the workspace:\n{}",
        rendered.join("\n")
    );
    assert_eq!(
        report.unused_suppressions(),
        0,
        "stale allow-list entries:\n{}",
        rendered.join("\n")
    );
    assert!(report.ok());
    assert!(report.files_scanned > 50, "walk looks truncated");
}

#[test]
fn finding_order_is_identical_at_any_job_count() {
    let root = workspace_root();
    let reports: Vec<_> = [1usize, 4]
        .iter()
        .map(|&jobs| {
            let mut allow = AllowList::load(&root.join("scripts/lint-allow.txt"))
                .expect("allow-list loads");
            lint_workspace(&root, &mut allow, jobs).expect("workspace walk succeeds")
        })
        .collect();
    assert_eq!(reports[0].files_scanned, reports[1].files_scanned);
    assert_eq!(reports[0].findings, reports[1].findings);
    assert_eq!(reports[0].to_json(), reports[1].to_json());
}

/// Source fragments that exercise every tricky lexical form. Interleaved
/// with whitespace they must always lex into a span tiling of the input.
fn fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z_]{1,7}".prop_map(|s| s),
        Just("r#match".to_string()),
        "[0-9]{1,4}".prop_map(|s| s),
        Just("1.5e-3".to_string()),
        // Strings: regular (escapes), raw at varying hash depth, byte.
        "[ -~]{0,6}".prop_map(|s| format!("{:?}", s)),
        ("[a-z\"'{} ]{0,8}", 0usize..3).prop_map(|(body, h)| {
            let hashes = "#".repeat(h + 1); // body may contain a bare quote
            format!("r{hashes}\"{body}\"{hashes}")
        }),
        "[a-z ]{0,6}".prop_map(|s| format!("b\"{s}\"")),
        // Chars and lifetimes.
        Just("'x'".to_string()),
        Just("'\\n'".to_string()),
        Just("'\\u{1F600}'".to_string()),
        Just("b'q'".to_string()),
        Just("'static".to_string()),
        Just("'a".to_string()),
        Just("'_".to_string()),
        // Comments: line, block, nested block, doc.
        "[a-z'\"{} ]{0,10}".prop_map(|s| format!("// {s}\n")),
        "[a-z'\" ]{0,8}".prop_map(|s| format!("/* {s} */")),
        "[a-z ]{0,6}".prop_map(|s| format!("/* a /* {s} */ b */")),
        Just("/// doc { comment }\n".to_string()),
        // Punctuation runs.
        Just("::<>(){}[];,.#!&|+-*/=".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_spans_tile_any_fragment_soup(
        parts in proptest::collection::vec(
            (
                fragment(),
                prop_oneof![Just(" "), Just("\n"), Just("\t"), Just("  ")],
            ),
            0..24,
        )
    ) {
        let mut src = String::new();
        for (frag, ws) in &parts {
            src.push_str(frag);
            src.push_str(ws);
        }
        let toks = lex(&src);
        // Spans are in order, non-empty, within bounds, and the gaps
        // between consecutive tokens are pure whitespace.
        let mut pos = 0usize;
        for t in &toks {
            prop_assert!(t.start >= pos, "overlapping token {t:?} in {src:?}");
            prop_assert!(t.end > t.start, "empty token {t:?}");
            prop_assert!(t.end <= src.len());
            prop_assert!(
                src[pos..t.start].chars().all(char::is_whitespace),
                "non-whitespace gap before {t:?} in {src:?}"
            );
            prop_assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
            pos = t.end;
        }
        prop_assert!(
            src[pos..].chars().all(char::is_whitespace),
            "unlexed tail {:?} of {src:?}",
            &src[pos..]
        );
        // Line numbers are monotone and match the newline count.
        let mut last_line = 1u32;
        for t in &toks {
            let computed = 1 + src[..t.start].bytes().filter(|&b| b == b'\n').count() as u32;
            prop_assert_eq!(t.line, computed, "line drift at {:?}", t);
            prop_assert!(t.line >= last_line);
            last_line = t.line;
        }
        // Lexing is a pure function of the source.
        prop_assert_eq!(&toks, &lex(&src));
    }

    #[test]
    fn comment_and_string_tokens_never_leak_code(
        inner in "[a-z .()!]{0,12}"
    ) {
        // Whatever we bury in a comment or string, the only *code* tokens
        // are the surrounding scaffold.
        let src = format!(
            "fn f() {{ let s = \"{inner}\"; /* {inner} */ s }} // {inner}"
        );
        let toks = lex(&src);
        let code: Vec<_> = toks
            .iter()
            .filter(|t| !t.is_comment() && t.kind != TokKind::Str && t.kind != TokKind::RawStr)
            .map(|t| t.text(&src).to_string())
            .collect();
        prop_assert_eq!(
            code,
            vec!["fn", "f", "(", ")", "{", "let", "s", "=", ";", "s", "}"]
        );
    }
}
