//! Behavioural and failure-injection tests for the full system: final
//! flushes, mode reversion, cache pressure, fragmented allocation,
//! degenerate cluster shapes, and collective edge cases.

use dualpar_cluster::prelude::*;
use dualpar_pfs::AllocConfig;
use dualpar_workloads::{DependentReader, MpiIoTest, Noncontig};

fn small() -> Experiment {
    Experiment::darwin().servers(3).compute_nodes(2)
}

/// Buffered writes that never fill the quota must still reach the disks
/// via the final flush when the program completes.
#[test]
fn final_flush_writes_buffered_data() {
    let w = MpiIoTest {
        nprocs: 4,
        file_size: 4 << 20,
        kind: IoKind::Write,
        ..Default::default()
    };
    let r = small()
        .tune(|cfg| cfg.dualpar.cache_quota = 64 << 20) // far larger than the footprint
        .file("w", w.file_size)
        .program(IoStrategy::DualParForced, move |files| w.build(files[0]))
        .run()
        .expect("valid experiment");
    assert_eq!(r.programs[0].phases, 0, "quota never fills");
    assert_eq!(r.programs[0].bytes_written, 4 << 20);
    // Every buffered byte must have hit a disk (write-through has no other
    // path for DualPar writes).
    assert!(
        r.disk_bytes >= 4 << 20,
        "final flush must write the data to disk (disk moved {} bytes)",
        r.disk_bytes
    );
}

/// Strategy 2 on a fully data-dependent workload: every prediction is
/// wrong, so every read falls back to a direct fetch — it must still
/// complete with the right bytes and not be catastrophically slow.
#[test]
fn s2_survives_total_misprediction() {
    let run = |strategy: IoStrategy| {
        let w = DependentReader {
            nprocs: 4,
            total_bytes: 8 << 20,
            request_size: 64 * 1024,
            ..Default::default()
        };
        small()
            .file("dep", w.file_size())
            .program(strategy, move |files| w.build(files[0]))
            .run()
            .expect("valid experiment")
    };
    let v = run(IoStrategy::Vanilla);
    let s2 = run(IoStrategy::PrefetchOverlap);
    assert_eq!(s2.programs[0].bytes_read, 8 << 20);
    let slowdown =
        s2.programs[0].elapsed().as_secs_f64() / v.programs[0].elapsed().as_secs_f64();
    assert!(
        slowdown < 3.0,
        "S2 with useless predictions should degrade gracefully, got {slowdown:.1}x"
    );
}

/// Severe cache pressure: prefetched data can be evicted before the
/// process consumes it. The direct-fetch escape hatch must keep the run
/// correct.
#[test]
fn dualpar_correct_under_cache_pressure() {
    let w = MpiIoTest {
        nprocs: 4,
        file_size: 4 << 20,
        ..Default::default()
    };
    // Room for only two chunks per node: almost everything prefetched is
    // evicted before use; the eviction path still runs at phase boundaries.
    let r = small()
        .tune(|cfg| cfg.dualpar.cache_quota = 1 << 20)
        .file("p", w.file_size)
        .program(IoStrategy::DualParForced, move |files| w.build(files[0]))
        .run()
        .expect("valid experiment");
    assert_eq!(r.programs[0].bytes_read, 4 << 20);
}

/// A fragmented (aged) file system: objects split into scattered extents.
/// Everything still completes and DualPar still wins.
#[test]
fn fragmented_allocation_still_works() {
    let run = |strategy: IoStrategy| {
        let w = Noncontig {
            nprocs: 4,
            elmt_count: 128,
            bytes_per_call: 256 * 1024,
            rows: 2048,
            ..Default::default()
        };
        small()
            .tune(|cfg| {
                cfg.alloc = AllocConfig {
                    inter_file_gap: 1 << 20,
                    fragment_bytes: 256 * 1024,
                    fragment_gap: 2 << 20,
                }
            })
            .file("frag", w.file_size())
            .program(strategy, move |files| w.build(files[0]))
            .run()
            .expect("valid experiment")
    };
    let v = run(IoStrategy::Vanilla);
    let d = run(IoStrategy::DualParForced);
    assert_eq!(v.programs[0].bytes_read, d.programs[0].bytes_read);
    assert!(
        d.programs[0].throughput_mbps() > v.programs[0].throughput_mbps(),
        "DualPar should still win on a fragmented disk"
    );
}

/// Degenerate cluster: one server, one compute node.
#[test]
fn single_server_single_node() {
    for strategy in [
        IoStrategy::Vanilla,
        IoStrategy::Collective,
        IoStrategy::PrefetchOverlap,
        IoStrategy::DualParForced,
    ] {
        let w = MpiIoTest {
            nprocs: 2,
            file_size: 1 << 20,
            collective: strategy == IoStrategy::Collective,
            ..Default::default()
        };
        let r = Experiment::darwin()
            .servers(1)
            .compute_nodes(1)
            .file("x", w.file_size)
            .program(strategy, move |files| w.build(files[0]))
            .run()
            .expect("valid experiment");
        assert_eq!(
            r.programs[0].bytes_read,
            1 << 20,
            "under {}",
            strategy.label()
        );
    }
}

/// A collective call where some ranks contribute nothing.
#[test]
fn collective_with_empty_ranks() {
    let r = small()
        .file("x", 1 << 20)
        .program(IoStrategy::Collective, |files| {
            let mk_call = |regions: Vec<FileRegion>| {
                let mut call = IoCall::read(files[0], regions);
                call.collective = true;
                Op::Io(call)
            };
            ProgramScript {
                name: "lopsided".into(),
                ranks: vec![
                    ProcessScript::new(vec![mk_call(vec![FileRegion::new(0, 65536)])]),
                    ProcessScript::new(vec![mk_call(vec![])]), // nothing to read
                    ProcessScript::new(vec![mk_call(vec![FileRegion::new(131072, 65536)])]),
                ],
            }
        })
        .run()
        .expect("valid experiment");
    assert_eq!(r.programs[0].bytes_read, 2 * 65536);
}

/// An entirely empty collective round (all ranks contribute nothing) must
/// not deadlock.
#[test]
fn collective_all_empty_does_not_deadlock() {
    let r = small()
        .file("x", 1 << 20)
        .program(IoStrategy::Collective, |files| {
            let mk = |regions: Vec<FileRegion>| {
                let mut call = IoCall::read(files[0], regions);
                call.collective = true;
                Op::Io(call)
            };
            ProgramScript {
                name: "empty".into(),
                ranks: vec![
                    ProcessScript::new(vec![mk(vec![]), mk(vec![FileRegion::new(0, 4096)])]),
                    ProcessScript::new(vec![mk(vec![]), mk(vec![FileRegion::new(4096, 4096)])]),
                ],
            }
        })
        .run()
        .expect("valid experiment");
    assert_eq!(r.programs[0].bytes_read, 8192);
}

/// Zoned disks: runs complete and the zoning slows an inner-track file
/// relative to an outer-track file.
#[test]
fn zoned_disks_slow_inner_files() {
    let run = |with_pad: bool| {
        let w = MpiIoTest {
            nprocs: 4,
            file_size: 8 << 20,
            barrier_every: 0,
            ..Default::default()
        };
        let mut exp = small().tune(|cfg| {
            cfg.disk.inner_rate_fraction = 0.4;
            cfg.alloc.inter_file_gap = 0;
        });
        if with_pad {
            // Fill ~80% of every disk so the test file lands near the
            // inner edge.
            let cfg = ClusterConfig::default();
            let pad = cfg.disk.capacity_sectors * 512 * 3 * 8 / 10;
            exp = exp.file("pad", pad);
        }
        exp.file("data", w.file_size)
            .program(IoStrategy::Vanilla, move |files| {
                w.build(*files.last().unwrap())
            })
            .run()
            .expect("valid experiment")
            .programs[0]
            .elapsed()
    };
    let outer = run(false);
    let inner = run(true);
    assert!(
        inner > outer,
        "inner-track file ({inner}) should be slower than outer ({outer})"
    );
}

/// Server-side write-back (the paper's literal "force dirty pages being
/// written back every one second"): writes are acknowledged at arrival,
/// so a bursty writer finishes earlier than under write-through, while
/// the flush daemon still pushes every byte to the disks eventually.
#[test]
fn server_writeback_acks_early_and_flushes() {
    let run = |mode: ServerWriteMode| {
        let w = MpiIoTest {
            nprocs: 4,
            file_size: 8 << 20,
            kind: IoKind::Write,
            ..Default::default()
        };
        let mut c = small()
            .server_write_mode(mode)
            .tune(|cfg| cfg.server_flush_interval = SimDuration::from_millis(100))
            .file("wb", w.file_size)
            .program(IoStrategy::Vanilla, move |files| w.build(files[0]))
            .build()
            .expect("valid experiment");
        let r = c.run();
        // Drain any outstanding flush events so disks settle.
        let disk_bytes: u64 = (0..3).map(|s| c.disk(s).bytes_serviced()).sum();
        (r.programs[0].elapsed(), disk_bytes)
    };
    let (through_t, through_bytes) = run(ServerWriteMode::WriteThrough);
    let (back_t, _) = run(ServerWriteMode::WriteBack);
    assert!(
        back_t < through_t,
        "write-back acks early: {back_t} should beat {through_t}"
    );
    assert_eq!(through_bytes, 8 << 20, "write-through moves every byte");
}

/// EMC diagnostics: the improvement signal is recorded for adaptive runs.
#[test]
fn emc_improvement_signal_recorded() {
    let mut exp = small();
    for i in 0..2usize {
        let w = MpiIoTest {
            nprocs: 8,
            file_size: 24 << 20,
            barrier_every: 8,
            ..Default::default()
        };
        exp = exp
            .file(format!("f{i}"), w.file_size)
            .program(IoStrategy::DualPar, move |files| {
                let mut s = w.build(files[i]);
                s.name = format!("i{i}");
                s
            });
    }
    let r = exp.run().expect("valid experiment");
    assert!(
        !r.emc_improvement.is_empty(),
        "adaptive runs must record the EMC improvement signal"
    );
    assert!(r.emc_improvement.iter().all(|&(_, v)| v >= 0.0));
}

/// Collective writes then collective reads in one program: two-phase I/O
/// handles both directions and the bytes balance.
#[test]
fn collective_mixed_read_write() {
    let r = small()
        .file("x", 2 << 20)
        .program(IoStrategy::Collective, |files| {
            let f = files[0];
            let mk = |kind: IoKind, regions: Vec<FileRegion>| {
                let mut call = IoCall {
                    kind,
                    file: f,
                    regions,
                    collective: true,
                    predicted: None,
                };
                call.regions.retain(|r| r.len > 0);
                Op::Io(call)
            };
            let nprocs = 4usize;
            let slab = (2 << 20) / nprocs as u64;
            ProgramScript {
                name: "rw".into(),
                ranks: (0..nprocs as u64)
                    .map(|r| {
                        ProcessScript::new(vec![
                            mk(IoKind::Write, vec![FileRegion::new(r * slab, slab)]),
                            Op::Barrier(0),
                            mk(IoKind::Read, vec![FileRegion::new(r * slab, slab)]),
                        ])
                    })
                    .collect(),
            }
        })
        .run()
        .expect("valid experiment");
    assert_eq!(r.programs[0].bytes_written, 2 << 20);
    assert_eq!(r.programs[0].bytes_read, 2 << 20);
}

/// Data sieving enabled on the vanilla path: correctness is unchanged
/// (same useful bytes delivered) even though covers include holes.
#[test]
fn sieving_preserves_correctness() {
    let run = |enabled: bool| {
        let w = Noncontig {
            nprocs: 4,
            elmt_count: 256, // 1 KB cells every 4 KB
            bytes_per_call: 64 * 1024,
            rows: 512,
            ..Default::default()
        };
        small()
            .tune(|cfg| cfg.sieve.enabled = enabled)
            .file("sv", w.file_size())
            .program(IoStrategy::Vanilla, move |files| w.build(files[0]))
            .run()
            .expect("valid experiment")
    };
    let off = run(false);
    let on = run(true);
    assert_eq!(off.programs[0].bytes_read, on.programs[0].bytes_read);
    // Sieving moves extra (hole) bytes at the disks.
    assert!(on.disk_bytes >= off.disk_bytes);
}

/// Compute-only programs (no I/O at all) run to completion under the
/// adaptive strategy without ever bothering EMC.
#[test]
fn compute_only_program() {
    let r = small()
        .program(IoStrategy::DualPar, |_| ProgramScript {
            name: "compute".into(),
            ranks: (0..4)
                .map(|_| {
                    ProcessScript::new(vec![
                        Op::Compute(SimDuration::from_millis(5)),
                        Op::Barrier(0),
                        Op::Compute(SimDuration::from_millis(5)),
                    ])
                })
                .collect(),
        })
        .run()
        .expect("valid experiment");
    assert_eq!(r.programs[0].bytes_read + r.programs[0].bytes_written, 0);
    assert!(r.programs[0].elapsed() >= SimDuration::from_millis(10));
    assert!(r.mode_events.is_empty());
}
