//! Qualitative-shape tests: the paper's headline comparisons must hold in
//! the simulator (who wins, in which regime), independent of absolute
//! numbers.

use dualpar_cluster::prelude::*;
use dualpar_core::ExecMode;
use dualpar_workloads::{compute_for_io_ratio, Demo, DependentReader, MpiIoTest, Noncontig};

fn small() -> Experiment {
    Experiment::darwin().servers(3).compute_nodes(2)
}

fn run_noncontig(strategy: IoStrategy) -> RunReport {
    let w = Noncontig {
        nprocs: 8,
        elmt_count: 128, // 512 B cells
        bytes_per_call: 1 << 20,
        rows: 8192, // 32 MB total
        collective: strategy == IoStrategy::Collective,
        ..Default::default()
    };
    small()
        .file("nc", w.file_size())
        .program(strategy, move |files| w.build(files[0]))
        .run()
        .expect("valid experiment")
}

/// Fig. 3 shape (noncontig): DualPar > collective > vanilla on
/// noncontiguous reads.
#[test]
fn noncontig_read_ordering() {
    let v = run_noncontig(IoStrategy::Vanilla).programs[0].throughput_mbps();
    let co = run_noncontig(IoStrategy::Collective).programs[0].throughput_mbps();
    let dp = run_noncontig(IoStrategy::DualParForced).programs[0].throughput_mbps();
    assert!(
        co > 1.5 * v,
        "collective ({co:.1} MB/s) must clearly beat vanilla ({v:.1} MB/s)"
    );
    assert!(
        dp > co,
        "DualPar ({dp:.1} MB/s) must beat collective ({co:.1} MB/s)"
    );
}

fn run_demo(strategy: IoStrategy, io_ratio: f64, seg: u64) -> RunReport {
    // Calibrate the per-call compute against the *vanilla* per-call I/O
    // time at this segment size (the paper's I/O ratio is defined against
    // the vanilla system).
    let pilot = {
        let w = Demo {
            nprocs: 8,
            file_size: 16 << 20,
            segment_size: seg,
            ..Default::default()
        };
        let calls = (w.file_size / (w.segs_per_call * 8 * seg)).max(1);
        let file_size = w.file_size;
        let r = small()
            .file("demo", file_size)
            .program(IoStrategy::Vanilla, move |files| w.build(files[0]))
            .run()
            .expect("valid experiment");
        SimDuration::from_secs_f64(r.programs[0].elapsed().as_secs_f64() / calls as f64)
    };
    let w = Demo {
        nprocs: 8,
        file_size: 64 << 20,
        segment_size: seg,
        compute_per_call: compute_for_io_ratio(pilot, io_ratio),
        ..Default::default()
    };
    small()
        .file("demo", w.file_size)
        .program(strategy, move |files| w.build(files[0]))
        .run()
        .expect("valid experiment")
}

/// Fig. 1(a) shape: at ~100% I/O ratio, Strategy 3 (data-driven) beats
/// Strategy 2 (prefetch-overlap); at low I/O ratio Strategy 2 wins because
/// it hides I/O behind computation that Strategy 3 re-executes.
#[test]
fn demo_strategy_crossover() {
    // High I/O intensity: S3 wins.
    let s2_high = run_demo(IoStrategy::PrefetchOverlap, 1.0, 4096).programs[0].elapsed();
    let s3_high = run_demo(IoStrategy::DualParForced, 1.0, 4096).programs[0].elapsed();
    assert!(
        s3_high < s2_high,
        "at 100% I/O ratio data-driven ({s3_high}) must beat prefetch-overlap ({s2_high})"
    );
    // Low I/O intensity: S2 wins (it slices computation out of
    // pre-execution and overlaps I/O with compute).
    let s2_low = run_demo(IoStrategy::PrefetchOverlap, 0.2, 4096).programs[0].elapsed();
    let s3_low = run_demo(IoStrategy::DualParForced, 0.2, 4096).programs[0].elapsed();
    assert!(
        s2_low < s3_low,
        "at 20% I/O ratio prefetch-overlap ({s2_low}) must beat data-driven ({s3_low})"
    );
}

/// Fig. 1(b) shape: Strategy 3's advantage shrinks as segments grow.
#[test]
fn demo_segment_size_sensitivity() {
    let gain = |seg: u64| {
        let s2 = run_demo(IoStrategy::PrefetchOverlap, 0.9, seg).programs[0].elapsed();
        let s3 = run_demo(IoStrategy::DualParForced, 0.9, seg).programs[0].elapsed();
        s2.as_secs_f64() / s3.as_secs_f64()
    };
    let small = gain(4 * 1024);
    let large = gain(128 * 1024);
    assert!(
        small > large,
        "S3's edge at 4 KB ({small:.2}x) must exceed its edge at 128 KB ({large:.2}x)"
    );
    assert!(small > 1.0, "S3 must win at 4 KB segments (got {small:.2}x)");
}

/// Table II shape: two concurrent mpi-io-test instances interfere; DualPar
/// restores most of the lost efficiency. Also checks Fig. 6's trace-level
/// explanation: DualPar's service order has a much smaller mean LBN step.
#[test]
fn interference_removed_by_dualpar() {
    let run_pair = |strategy: IoStrategy| {
        let mut exp = small().trace_disks(true);
        for i in 0..2usize {
            let w = MpiIoTest {
                nprocs: 8,
                file_size: 32 << 20,
                request_size: 16 * 1024,
                barrier_every: 1,
                ..Default::default()
            };
            exp = exp
                .file(format!("file{i}"), w.file_size)
                .program(strategy, move |files| {
                    let mut script = w.build(files[i]);
                    script.name = format!("inst{i}");
                    script
                });
        }
        let mut c = exp.build().expect("valid experiment");
        let report = c.run();
        // Seek overhead per byte serviced: total seek distance over all
        // services divided by bytes moved — the trace-level measure of
        // Fig. 6's "reduced average seek distance".
        let disk = c.disk(0);
        let seek_per_mb = disk.trace().avg_seek_distance()
            * disk.trace().serviced() as f64
            / (disk.bytes_serviced() as f64 / 1e6);
        (report, seek_per_mb)
    };
    let (v, v_seek) = run_pair(IoStrategy::Vanilla);
    let (d, d_seek) = run_pair(IoStrategy::DualParForced);
    let v_thr = v.aggregate_throughput_mbps();
    let d_thr = d.aggregate_throughput_mbps();
    assert!(
        d_thr > 1.3 * v_thr,
        "DualPar aggregate ({d_thr:.1}) must clearly beat vanilla ({v_thr:.1})"
    );
    assert!(
        d_seek < v_seek / 4.0,
        "DualPar's seek overhead per MB ({d_seek:.0} sectors) must be far below vanilla's ({v_seek:.0})"
    );
}

/// Fig. 7 shape: the adaptive system switches a program into the
/// data-driven mode when interference degrades efficiency.
#[test]
fn adaptive_mode_switches_on_under_interference() {
    let mut exp = small();
    for i in 0..2usize {
        let w = MpiIoTest {
            nprocs: 8,
            file_size: 48 << 20,
            request_size: 16 * 1024,
            // Sparse barriers keep the per-process I/O ratio above EMC's
            // 80% trigger (barrier waits count as computation, §IV-B).
            barrier_every: 8,
            ..Default::default()
        };
        exp = exp
            .file(format!("f{i}"), w.file_size)
            .program(IoStrategy::DualPar, move |files| {
                let mut script = w.build(files[i]);
                script.name = format!("inst{i}");
                script
            });
    }
    let r = exp.run().expect("valid experiment");
    assert!(
        r.mode_events
            .iter()
            .any(|e| e.mode == ExecMode::DataDriven),
        "EMC should have switched at least one program to data-driven; events: {:?}",
        r.mode_events
    );
    assert!(r.programs.iter().all(|p| p.phases > 0 || p.bytes_read > 0));
}

/// Table III shape: on a fully data-dependent workload, adaptive DualPar's
/// overhead over vanilla is bounded (the paper measures ≤7.2%), because a
/// high mis-prefetch ratio disables the mode after one bad phase.
#[test]
fn misprefetch_disables_mode_with_bounded_overhead() {
    let run = |strategy: IoStrategy| {
        let w = DependentReader {
            nprocs: 8,
            total_bytes: 16 << 20,
            request_size: 64 * 1024,
            ..Default::default()
        };
        small()
            .file("dep", w.file_size())
            .program(strategy, move |files| w.build(files[0]))
            .run()
            .expect("valid experiment")
    };
    let v = run(IoStrategy::Vanilla).programs[0].elapsed();
    let dp_report = run(IoStrategy::DualPar);
    let dp = dp_report.programs[0].elapsed();
    let overhead = dp.as_secs_f64() / v.as_secs_f64() - 1.0;
    assert!(
        overhead < 0.25,
        "dependent-read overhead must stay bounded, got {:.1}%",
        overhead * 100.0
    );
    // The mode must have been vetoed: few phases despite an I/O-bound run.
    assert!(
        dp_report.programs[0].phases <= 3,
        "mis-prefetch should disable the mode after ~one phase, got {} phases",
        dp_report.programs[0].phases
    );
}

/// Write path: DualPar's batched write-back beats vanilla write-through on
/// an interleaved pattern (Fig. 3b shape).
#[test]
fn dualpar_write_batching_wins() {
    let run = |strategy: IoStrategy| {
        let w = Noncontig {
            nprocs: 8,
            elmt_count: 128,
            bytes_per_call: 1 << 20,
            rows: 4096, // 16 MB
            kind: IoKind::Write,
            collective: strategy == IoStrategy::Collective,
            ..Default::default()
        };
        small()
            .file("ncw", w.file_size())
            .program(strategy, move |files| w.build(files[0]))
            .run()
            .expect("valid experiment")
    };
    let v = run(IoStrategy::Vanilla).programs[0].throughput_mbps();
    let dp = run(IoStrategy::DualParForced).programs[0].throughput_mbps();
    assert!(
        dp > 2.0 * v,
        "DualPar writes ({dp:.1} MB/s) must clearly beat vanilla ({v:.1} MB/s)"
    );
}
