//! Engine smoke tests: tiny workloads under every strategy must run to
//! completion with sane accounting.

use dualpar_cluster::prelude::*;
use dualpar_workloads::MpiIoTest;

fn run_one(strategy: IoStrategy, kind: IoKind) -> RunReport {
    let w = MpiIoTest {
        nprocs: 4,
        file_size: 8 << 20,
        request_size: 16 * 1024,
        kind,
        collective: strategy == IoStrategy::Collective,
        barrier_every: 4,
        compute_per_call: SimDuration::from_micros(100),
    };
    Experiment::darwin()
        .servers(3)
        .compute_nodes(2)
        .file("data", w.file_size)
        .program(strategy, move |files| w.build(files[0]))
        .run()
        .expect("valid experiment")
}

#[test]
fn vanilla_read_completes() {
    let r = run_one(IoStrategy::Vanilla, IoKind::Read);
    let p = &r.programs[0];
    assert_eq!(p.bytes_read, 8 << 20);
    assert_eq!(p.bytes_written, 0);
    assert!(p.finish > p.start);
    assert!(p.throughput_mbps() > 0.1);
}

#[test]
fn vanilla_write_completes() {
    let r = run_one(IoStrategy::Vanilla, IoKind::Write);
    assert_eq!(r.programs[0].bytes_written, 8 << 20);
}

#[test]
fn collective_read_completes() {
    let r = run_one(IoStrategy::Collective, IoKind::Read);
    assert_eq!(r.programs[0].bytes_read, 8 << 20);
}

#[test]
fn collective_write_completes() {
    let r = run_one(IoStrategy::Collective, IoKind::Write);
    assert_eq!(r.programs[0].bytes_written, 8 << 20);
}

#[test]
fn prefetch_overlap_read_completes() {
    let r = run_one(IoStrategy::PrefetchOverlap, IoKind::Read);
    assert_eq!(r.programs[0].bytes_read, 8 << 20);
}

#[test]
fn dualpar_forced_read_completes_with_phases() {
    let r = run_one(IoStrategy::DualParForced, IoKind::Read);
    let p = &r.programs[0];
    assert_eq!(p.bytes_read, 8 << 20);
    assert!(p.phases > 0, "forced data-driven mode must run phases");
    assert_eq!(p.avg_misprefetch, 0.0, "static pattern predicts perfectly");
}

#[test]
fn dualpar_forced_write_completes_with_phases() {
    let r = run_one(IoStrategy::DualParForced, IoKind::Write);
    let p = &r.programs[0];
    assert_eq!(p.bytes_written, 8 << 20);
    assert!(p.phases > 0);
}

#[test]
fn adaptive_dualpar_completes() {
    let r = run_one(IoStrategy::DualPar, IoKind::Read);
    assert_eq!(r.programs[0].bytes_read, 8 << 20);
}

#[test]
fn deterministic_across_runs() {
    let a = run_one(IoStrategy::DualParForced, IoKind::Read);
    let b = run_one(IoStrategy::DualParForced, IoKind::Read);
    assert_eq!(a.sim_end, b.sim_end);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.programs[0].finish, b.programs[0].finish);
}
