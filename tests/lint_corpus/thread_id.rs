fn worker_tag() -> std::thread::ThreadId {
    std::thread::current().id()
}
