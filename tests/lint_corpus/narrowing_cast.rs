fn shrink(x: u64) -> u32 {
    x as u32
}
fn widen(x: u32) -> u64 {
    x as u64
}
fn to_usize(x: u32) -> usize {
    x as usize
}
