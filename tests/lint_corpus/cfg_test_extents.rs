//! Regression corpus for the cfg(test) extent tracker.

#[cfg(test)]
#[allow(dead_code)] fn helper() { maybe().unwrap(); }
fn real_after_stacked() { maybe().unwrap(); }

#[cfg(test)]
/* a block comment with a { brace */
fn masked_after_comment() { maybe().unwrap(); }
fn real_after_comment() { maybe().unwrap(); }

#[cfg(test)]
mod tests {
    fn inside() { maybe().unwrap(); }
}
fn real_after_mod() { maybe().unwrap(); }
