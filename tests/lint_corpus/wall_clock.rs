fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
fn epoch() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
