fn fail_fast(flag: bool) {
    if flag {
        panic!("boom");
    }
}
// panic!("in a comment")
fn message() -> &'static str {
    "panic!(not code)"
}
