// Corpus: the unwrap rule fires on real code only.
fn library(opt: Option<u32>) -> u32 {
    let a = opt.unwrap();
    // a.unwrap() in a line comment is fine
    /* b.unwrap() in a block comment is fine */
    let s = "c.unwrap() in a string";
    let r = r#"d.unwrap() in a raw string"#;
    keep(s, r);
    a
}

#[cfg(test)]
mod tests {
    fn in_tests(opt: Option<u32>) -> u32 {
        opt.unwrap()
    }
}
