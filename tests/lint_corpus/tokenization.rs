fn tricky<'a>(x: &'a str) -> &'a str {
    let raw = r#"contains .unwrap() and panic!("x") and 'a' quotes"#;
    let nested = "escaped \" quote then .unwrap()";
    /* nested /* block */ comment with panic!("y") */
    let c = 'x';
    let esc = '\'';
    let byte = b'\n';
    let bytes = b"panic!(no)";
    let rawb = br#".unwrap()"#;
    keep(raw, nested, c, esc, byte, bytes, rawb);
    x
}
