use std::collections::HashMap;
use std::collections::{BTreeMap, HashSet};
use std::collections::VecDeque;
fn keyspace(m: &HashMap<u32, u32>, s: &HashSet<u32>) -> usize {
    m.len() + s.len()
}
fn ok(q: &VecDeque<u32>, b: &BTreeMap<u32, u32>) -> usize {
    q.len() + b.len()
}
