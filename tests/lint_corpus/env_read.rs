fn home() -> Option<String> {
    std::env::var("HOME").ok()
}
fn args_are_fine() -> usize {
    std::env::args().count()
}
