use std::sync::Mutex;
fn guard(m: &Mutex<u32>) -> u32 {
    *m.lock().expect("poisoned")
}
