fn instrument(tel: &mut Telemetry, t: SimTime) {
    tel.event(t, "disk", "start", |e| e.num("lbn", 7));
    let ev = TraceEvent::new(t, "emc", "mode");
    tel.push(ev);
    tel.event(t, component_of(), kind_of(), |e| e);
}
#[cfg(test)]
mod tests {
    fn masked(tel: &mut Telemetry, t: SimTime) {
        tel.event(t, "x", "k", |e| e);
    }
}
