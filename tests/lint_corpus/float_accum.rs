fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}
fn total(xs: &[u64]) -> u64 {
    xs.iter().sum::<u64>()
}
