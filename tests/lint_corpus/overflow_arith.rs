fn deadline(arrival: u64, expire: u64) -> u64 {
    arrival + expire
}
fn bytes(sectors: u64) -> u64 {
    sectors*512
}
fn guarded(now: u64, slice: u64) -> u64 {
    now.saturating_add(slice)
}
fn neutral(i: usize) -> usize {
    i + 1
}
fn deref(times: &u64) -> bool {
    if *times == 0 { true } else { false }
}
