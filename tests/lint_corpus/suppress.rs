fn startup(opt: Option<u32>) -> u32 {
    let a = opt.unwrap(); // audit:allow -- fail-fast startup path
    let b = opt.unwrap();
    a + b
}
